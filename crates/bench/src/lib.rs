//! Shared plumbing for the experiment binaries: result-file output,
//! plain-text table rendering, and the scheduler/workload registries
//! used by the `empirical` and `ablation` sweeps.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod par;
pub mod timing;

pub use par::par_map;

use std::fs;
use std::path::PathBuf;

use moldable_core::baselines::{self, EctScheduler, EqualShareScheduler};
use moldable_core::{EasyBackfillScheduler, OnlineScheduler};
use moldable_graph::{gen, TaskGraph};
use moldable_model::rng::StdRng;
use moldable_model::sample::ParamDistribution;
use moldable_model::ModelClass;
use moldable_sim::Scheduler;

/// Where experiment outputs land: `<workspace>/results`.
///
/// # Panics
///
/// Panics if the directory cannot be created.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

fn workspace_root() -> PathBuf {
    // crates/bench -> workspace root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("bench crate lives two levels below the workspace root")
        .to_path_buf()
}

/// Write `content` to `results/<name>` and echo the path.
///
/// # Panics
///
/// Panics on I/O failure.
pub fn write_result(name: &str, content: &str) {
    let path = results_dir().join(name);
    fs::write(&path, content).expect("write result file");
    println!("[wrote {}]", path.display());
}

/// Minimal fixed-width table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncol {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>w$}", cells[i], w = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Workload shapes used by the empirical sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Linear chain of 64 tasks.
    Chain,
    /// 128 independent tasks.
    Independent,
    /// 8-wide, 8-stage fork-join.
    ForkJoin,
    /// 8-layer, 16-wide random layered DAG.
    Layered,
    /// 96-task Erdős–Rényi DAG.
    Random,
    /// Tiled Cholesky, 8×8 blocks.
    Cholesky,
    /// Tiled LU, 6×6 blocks.
    Lu,
    /// FFT butterfly on 32 points.
    Fft,
    /// 12×12 wavefront sweep.
    Wavefront,
}

impl Workload {
    /// All shapes.
    #[must_use]
    pub fn all() -> [Workload; 9] {
        [
            Self::Chain,
            Self::Independent,
            Self::ForkJoin,
            Self::Layered,
            Self::Random,
            Self::Cholesky,
            Self::Lu,
            Self::Fft,
            Self::Wavefront,
        ]
    }

    /// Short name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Chain => "chain",
            Self::Independent => "independent",
            Self::ForkJoin => "fork-join",
            Self::Layered => "layered",
            Self::Random => "random-dag",
            Self::Cholesky => "cholesky",
            Self::Lu => "lu",
            Self::Fft => "fft",
            Self::Wavefront => "wavefront",
        }
    }

    /// Generate an instance of this shape with tasks of `class`.
    #[must_use]
    pub fn build(self, class: ModelClass, p_total: u32, seed: u64) -> TaskGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = ParamDistribution::default();
        let mut assign = gen::weighted_sampler(class, dist, p_total, &mut rng);
        match self {
            Self::Chain => gen::chain(64, &mut assign),
            Self::Independent => gen::independent(128, &mut assign),
            Self::ForkJoin => gen::fork_join(8, 8, &mut assign),
            Self::Layered => {
                let mut srng = StdRng::seed_from_u64(seed ^ 0x5EED);
                gen::layered_random(8, 16, 0.3, &mut srng, &mut assign)
            }
            Self::Random => {
                let mut srng = StdRng::seed_from_u64(seed ^ 0xDA6);
                gen::random_dag(96, 0.08, &mut srng, &mut assign)
            }
            Self::Cholesky => gen::cholesky(8, &mut assign),
            Self::Lu => gen::lu(6, &mut assign),
            Self::Fft => gen::fft(5, &mut assign),
            Self::Wavefront => gen::wavefront(12, 12, &mut assign),
        }
    }
}

/// Named scheduler factory for the sweeps.
pub struct SchedulerSpec {
    /// Display name.
    pub name: &'static str,
    /// Fresh scheduler instance for a graph of `class`.
    pub make: fn(ModelClass) -> Box<dyn Scheduler>,
}

/// The scheduler line-up compared in the empirical experiments.
#[must_use]
pub fn scheduler_lineup() -> Vec<SchedulerSpec> {
    vec![
        SchedulerSpec {
            name: "online(paper)",
            make: |c| Box::new(OnlineScheduler::for_class(c)),
        },
        SchedulerSpec {
            name: "one-proc",
            make: |_| Box::new(baselines::one_proc()),
        },
        SchedulerSpec {
            name: "max-proc",
            make: |_| Box::new(baselines::max_proc()),
        },
        SchedulerSpec {
            name: "ect",
            make: |_| Box::new(EctScheduler::new()),
        },
        SchedulerSpec {
            name: "equal-share",
            make: |_| Box::new(EqualShareScheduler::new()),
        },
        SchedulerSpec {
            name: "lpa-only",
            make: |c| Box::new(baselines::lpa_only(c.optimal_mu())),
        },
        SchedulerSpec {
            name: "cap-only",
            make: |c| Box::new(baselines::cap_only(c.optimal_mu())),
        },
        SchedulerSpec {
            name: "backfill",
            make: |c| Box::new(EasyBackfillScheduler::new(c.optimal_mu())),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let r = t.render();
        assert!(r.contains("a  bbbb"));
        assert_eq!(r.lines().count(), 4);
        assert!(t.to_csv().starts_with("a,bbbb\n1,2\n"));
    }

    #[test]
    fn workloads_build_nonempty_graphs() {
        for w in Workload::all() {
            let g = w.build(ModelClass::Amdahl, 32, 1);
            assert!(g.n_tasks() > 0, "{}", w.name());
            assert_eq!(g.topo_order().len(), g.n_tasks());
        }
    }

    #[test]
    fn lineup_schedulers_run_a_small_graph() {
        let g = Workload::ForkJoin.build(ModelClass::General, 16, 7);
        for spec in scheduler_lineup() {
            let mut s = (spec.make)(ModelClass::General);
            let sched =
                moldable_sim::simulate(&g, s.as_mut(), &moldable_sim::SimOptions::new(16)).unwrap();
            sched.validate(&g).unwrap();
        }
    }
}
