//! Scoped-thread fan-out for the sweep binaries.
//!
//! [`par_map`] runs one closure per input item across all available
//! cores and returns the results **in input order**, so every sweep
//! that prints or writes its rows sequentially after the fan-out keeps
//! byte-identical output regardless of thread scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `items` in parallel (scoped threads, work-stealing via
/// a shared atomic cursor) and collect the results in input order.
///
/// Threads are capped at `available_parallelism` and at `items.len()`;
/// with zero or one item (or a single core) this degrades to a plain
/// sequential map. A panic inside `f` propagates to the caller once all
/// workers have stopped.
///
/// # Panics
///
/// Panics if `f` panicked on any item.
pub fn par_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    // One mutex per slot: workers claim disjoint indices through the
    // cursor, so locks are never contended — they only make the slot
    // transfer Sync without unsafe code.
    let input: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let output: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = input[i]
                        .lock()
                        .expect("input slot poisoned")
                        .take()
                        .expect("each slot is claimed exactly once");
                    let value = f(item);
                    *output[i].lock().expect("output slot poisoned") = Some(value);
                })
            })
            .collect();
        // Join manually so a worker panic resurfaces with its original
        // payload (scope's automatic join would replace it).
        let mut first_panic = None;
        for h in handles {
            if let Err(payload) = h.join() {
                first_panic.get_or_insert(payload);
            }
        }
        if let Some(payload) = first_panic {
            std::panic::resume_unwind(payload);
        }
    });

    output
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("output slot poisoned")
                .expect("every slot was filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = par_map((0..1000u64).collect(), |i| i * i);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        assert_eq!(par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par_map(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn moves_non_clone_items() {
        struct NoClone(String);
        let items = vec![NoClone("a".into()), NoClone("b".into())];
        let out = par_map(items, |x| x.0);
        assert_eq!(out, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _ = par_map(vec![1u32, 2, 3], |x| {
            assert!(x != 2, "boom");
            x
        });
    }
}
