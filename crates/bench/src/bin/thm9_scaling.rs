//! Theorem 9 scaling: makespan of online schedulers against the
//! adaptive chain adversary as the depth `D = K = 2^ℓ` grows, compared
//! with the `ln K − ln ℓ − 1/ℓ` bound and the exact Lemma 10 floor
//! `Σ 1/(ℓ+i)` (the offline optimum is 1 by construction, so the
//! makespan *is* the competitive ratio).
//!
//! ```text
//! cargo run --release -p moldable-bench --bin thm9_scaling
//! ```

use moldable_adversary::arbitrary::{params, AdaptiveChains};
use moldable_analysis::{deterministic_lower_bound, lemma10_makespan};
use moldable_bench::{par_map, write_result, Table};
use moldable_core::baselines::EqualShareScheduler;
use moldable_core::OnlineScheduler;
use moldable_model::ModelClass;
use moldable_sim::{simulate_instance, Scheduler, SimOptions};

fn run(l: u32, mut sched: Box<dyn Scheduler>) -> f64 {
    let pr = params(l);
    let mut adv = AdaptiveChains::new(l);
    let s = simulate_instance(&mut adv, sched.as_mut(), &SimOptions::new(pr.p_total))
        .expect("adaptive run");
    s.check_capacity(1e-9).expect("valid");
    // Every chain must have been retired into exactly its group quota.
    let sizes = adv.realized_group_sizes();
    for (i, &sz) in sizes.iter().enumerate().skip(1) {
        assert_eq!(
            sz,
            1u64 << (pr.k - u32::try_from(i).expect("group fits u32"))
        );
    }
    s.makespan
}

fn main() {
    println!("Theorem 9 — Omega(ln D) for the arbitrary model (T_opt = 1)\n");
    let mut t = Table::new(&[
        "l",
        "K=D",
        "P",
        "tasks",
        "ln-bound",
        "lemma10",
        "equal-share",
        "online(mu)",
    ]);
    // Each depth (and each scheduler within it) is an independent
    // adversary run; fan out and report in input order.
    let runs = par_map((1..=4u32).collect(), |l| {
        let eq = run(l, Box::new(EqualShareScheduler::new()));
        let on = run(
            l,
            Box::new(OnlineScheduler::for_class(ModelClass::Arbitrary)),
        );
        (l, eq, on)
    });
    for (l, eq, on) in runs {
        let pr = params(l);
        let lnb = deterministic_lower_bound(pr.k, l);
        let exact = lemma10_makespan(pr.k, l);
        assert!(
            eq >= exact - 1e-9 && on >= exact - 1e-9,
            "Lemma 10 violated"
        );
        println!(
            "l = {l}: K = {:>2}, P = {:>6}, tasks = {:>6} | ln-bound {lnb:>7.4}, lemma10 {exact:.4}, equal-share {eq:.4}, online {on:.4}",
            pr.k, pr.p_total, pr.n_tasks
        );
        t.row(vec![
            l.to_string(),
            pr.k.to_string(),
            pr.p_total.to_string(),
            pr.n_tasks.to_string(),
            format!("{lnb:.4}"),
            format!("{exact:.4}"),
            format!("{eq:.4}"),
            format!("{on:.4}"),
        ]);
    }
    println!();
    println!("{}", t.render());
    println!("The ratio grows ~ln(K) while any constant-ratio guarantee is impossible");
    println!("(Theorem 9); both schedulers stay above the exact Lemma 10 floor.");
    write_result("thm9_scaling.csv", &t.to_csv());
}
