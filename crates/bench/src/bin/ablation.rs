//! Ablations of the design choices in Algorithms 1 and 2:
//!
//! 1. **μ sweep** — competitive behaviour of the full algorithm as μ
//!    varies, on adversarial and realistic workloads (Theorems 1–4 pick
//!    μ* per model; this shows the sensitivity).
//! 2. **Step ablation** — LPA-only (no cap) and cap-only (no
//!    α-minimization) against the full Algorithm 2.
//! 3. **Queue policy** — the paper's FIFO versus the priority rules it
//!    hypothesizes "may work better in practice".
//!
//! ```text
//! cargo run --release -p moldable-bench --bin ablation
//! ```

use moldable_bench::{write_result, Table, Workload};
use moldable_core::baselines;
use moldable_core::{OnlineScheduler, QueuePolicy};
use moldable_model::ModelClass;
use moldable_sim::{simulate, Scheduler, SimOptions};

const P_TOTAL: u32 = 64;
const SEEDS: u64 = 5;

/// Mean normalized makespan of `make()` over workloads × seeds for a class.
fn mean_ratio(class: ModelClass, make: &dyn Fn() -> Box<dyn Scheduler>) -> f64 {
    let workloads = [
        Workload::Layered,
        Workload::Cholesky,
        Workload::ForkJoin,
        Workload::Random,
    ];
    let mut sum = 0.0;
    let mut n = 0u32;
    for w in workloads {
        for seed in 0..SEEDS {
            let g = w.build(class, P_TOTAL, seed * 104_729 + 7);
            let lb = g.bounds(P_TOTAL).lower_bound();
            let mut s = make();
            let sched = simulate(&g, s.as_mut(), &SimOptions::new(P_TOTAL)).expect("run");
            sched.validate(&g).expect("valid");
            sum += sched.makespan / lb;
            n += 1;
        }
    }
    sum / f64::from(n)
}

fn mu_sweep() -> Table {
    println!("1) mu sweep (normalized makespan, mean over 4 workloads x {SEEDS} seeds)");
    let mus = [
        0.05, 0.10, 0.15, 0.211, 0.25, 0.271, 0.30, 0.324, 0.35, 0.38,
    ];
    let mut t = Table::new(&["mu", "roofline", "communication", "amdahl", "general"]);
    for &mu in &mus {
        let mut row = vec![format!("{mu:.3}")];
        for class in ModelClass::bounded_classes() {
            let r = mean_ratio(class, &|| Box::new(OnlineScheduler::with_mu(mu)));
            row.push(format!("{r:.3}"));
        }
        t.row(row);
    }
    println!("{}", t.render());
    t
}

fn step_ablation() -> Table {
    println!("2) Algorithm 2 step ablation (normalized makespan)");
    let mut t = Table::new(&["variant", "roofline", "communication", "amdahl", "general"]);
    type MakeSched = Box<dyn Fn(ModelClass) -> Box<dyn Scheduler>>;
    let variants: Vec<(&str, MakeSched)> = vec![
        (
            "full (LPA+cap)",
            Box::new(|c: ModelClass| Box::new(OnlineScheduler::for_class(c)) as Box<dyn Scheduler>),
        ),
        (
            "lpa-only",
            Box::new(|c: ModelClass| {
                Box::new(baselines::lpa_only(c.optimal_mu())) as Box<dyn Scheduler>
            }),
        ),
        (
            "cap-only",
            Box::new(|c: ModelClass| {
                Box::new(baselines::cap_only(c.optimal_mu())) as Box<dyn Scheduler>
            }),
        ),
    ];
    for (name, make) in &variants {
        let mut row = vec![(*name).to_string()];
        for class in ModelClass::bounded_classes() {
            let r = mean_ratio(class, &|| make(class));
            row.push(format!("{r:.3}"));
        }
        t.row(row);
    }
    println!("{}", t.render());
    t
}

fn policy_ablation() -> Table {
    println!("3) queue policy (normalized makespan, general model)");
    let mut t = Table::new(&["policy", "layered", "cholesky", "fork-join", "random-dag"]);
    for policy in QueuePolicy::all() {
        let mut row = vec![policy.name().to_string()];
        for w in [
            Workload::Layered,
            Workload::Cholesky,
            Workload::ForkJoin,
            Workload::Random,
        ] {
            let mut sum = 0.0;
            for seed in 0..SEEDS {
                let g = w.build(ModelClass::General, P_TOTAL, seed * 31 + 3);
                let lb = g.bounds(P_TOTAL).lower_bound();
                let mut s = OnlineScheduler::for_class(ModelClass::General).with_policy(policy);
                let sched = simulate(&g, &mut s, &SimOptions::new(P_TOTAL)).expect("run");
                sched.validate(&g).expect("valid");
                sum += sched.makespan / lb;
            }
            #[allow(clippy::cast_precision_loss)]
            row.push(format!("{:.3}", sum / SEEDS as f64));
        }
        t.row(row);
    }
    println!("{}", t.render());
    t
}

fn main() {
    println!("Ablations (P = {P_TOTAL})\n");
    let a = mu_sweep();
    let b = step_ablation();
    let c = policy_ablation();
    let mut out = a.to_csv();
    out.push('\n');
    out.push_str(&b.to_csv());
    out.push('\n');
    out.push_str(&c.to_csv());
    write_result("ablation.csv", &out);
}
