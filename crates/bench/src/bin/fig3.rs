//! Regenerates **Figure 3**: the arbitrary-model lower-bound instance
//! for ℓ = 2 (K = 4): 15 linear chains in 4 groups on P = 32
//! processors, every task with `t(p) = 1/(lg p + 1)`.
//!
//! ```text
//! cargo run --release -p moldable-bench --bin fig3
//! ```

use moldable_adversary::arbitrary::{fig3_graph, params};
use moldable_bench::write_result;

fn main() {
    let l = 2;
    let pr = params(l);
    let (graph, chains) = fig3_graph(l);

    println!("Figure 3 — Theorem 9 instance for l = {l}:");
    println!(
        "K = {}, P = {}, n = {} chains, {} tasks, depth D = {}",
        pr.k,
        pr.p_total,
        pr.n_chains,
        pr.n_tasks,
        graph.depth()
    );
    println!();
    for group in 1..=pr.k {
        let members: Vec<String> = chains
            .iter()
            .enumerate()
            .filter(|(_, (g, _))| *g == group)
            .map(|(i, (_, tasks))| format!("chain {} ({} tasks)", i + 1, tasks.len()))
            .collect();
        println!("Group {group}: {}", members.join(", "));
    }

    // DOT: label each task "c(i)" with chain id and position, like the
    // figure's "11(2)" notation.
    let mut owner = vec![(0usize, 0usize); graph.n_tasks()];
    for (ci, (_, tasks)) in chains.iter().enumerate() {
        for (pos, t) in tasks.iter().enumerate() {
            owner[t.index()] = (ci + 1, pos + 1);
        }
    }
    let dot = graph.to_dot("figure3", |idx| {
        let (chain, pos) = owner[idx];
        format!("{chain}({pos})")
    });
    write_result("fig3.dot", &dot);
    println!("\n{dot}");
}
