//! Failure-scenario experiment: makespan inflation of the online
//! algorithm under i.i.d. per-attempt failures with probability `q`,
//! versus the geometric work-inflation factor `1/(1 − q)`, and the
//! competitive ratio against the *realized* instance's lower bound
//! (the paper's Section 2 carry-over claim).
//!
//! ```text
//! cargo run --release -p moldable-bench --bin resilience
//! ```

use moldable_bench::{write_result, Table, Workload};
use moldable_core::OnlineScheduler;
use moldable_model::ModelClass;
use moldable_resilience::FaultyInstance;
use moldable_sim::{simulate, simulate_instance, SimOptions};

fn main() {
    let p_total = 32;
    let class = ModelClass::Amdahl;
    let seeds = 8u64;
    println!("Resilient execution (P = {p_total}, Amdahl Cholesky workflow, {seeds} seeds)\n");
    println!("q: per-attempt failure probability; tasks re-execute until success.");
    println!("Expected work inflation is geometric: 1/(1-q).\n");

    let mut t = Table::new(&[
        "q",
        "mean attempts/task",
        "1/(1-q)",
        "T(q)/T(0)",
        "T / realized-LB",
        "guarantee",
    ]);
    let guarantee = class.proven_upper_bound().expect("bounded");
    for &q in &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let mut att_sum = 0.0;
        let mut infl_sum = 0.0;
        let mut ratio_sum = 0.0;
        let mut worst_ratio = 0.0f64;
        for seed in 0..seeds {
            let g = Workload::Cholesky.build(class, p_total, seed * 17 + 1);
            // fault-free reference
            let mut s0 = OnlineScheduler::for_class(class);
            let base = simulate(&g, &mut s0, &SimOptions::new(p_total)).expect("run");
            // faulty run
            let mut inst = FaultyInstance::new(&g, q, seed * 29 + 11);
            let mut s = OnlineScheduler::for_class(class);
            let faulty =
                simulate_instance(&mut inst, &mut s, &SimOptions::new(p_total)).expect("run");
            faulty.check_capacity(1e-9).expect("valid");
            #[allow(clippy::cast_precision_loss)]
            let attempts = inst.total_attempts() as f64 / g.n_tasks() as f64;
            att_sum += attempts;
            infl_sum += faulty.makespan / base.makespan;
            let r = faulty.makespan / inst.realized_lower_bound(p_total);
            ratio_sum += r;
            worst_ratio = worst_ratio.max(r);
        }
        #[allow(clippy::cast_precision_loss)]
        let k = seeds as f64;
        assert!(
            worst_ratio <= guarantee + 1e-9,
            "carry-over claim violated at q={q}: ratio {worst_ratio}"
        );
        t.row(vec![
            format!("{q:.1}"),
            format!("{:.3}", att_sum / k),
            format!("{:.3}", 1.0 / (1.0 - q)),
            format!("{:.3}", infl_sum / k),
            format!("{:.3}", ratio_sum / k),
            format!("{guarantee:.2}"),
        ]);
    }
    let rendered = t.render();
    println!("{rendered}");
    println!("The ratio against the realized lower bound stays within the Theorem 3");
    println!("guarantee at every q — the paper's 'results carry over' claim, measured.");
    write_result("resilience.csv", &t.to_csv());
    write_result("resilience.txt", &rendered);
}
