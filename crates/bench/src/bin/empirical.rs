//! The practical evaluation the paper's conclusion anticipates:
//! "we anticipate that our algorithm will perform much better
//! practically than that predicted by the worst-case competitive
//! ratios." This bench measures the normalized makespan
//! `T / max(A_min/P, C_min)` of the paper's algorithm and six baselines
//! over nine workflow shapes × four speedup models × several seeds.
//!
//! Runs the (shape × model) cells across threads — the harness itself
//! is a parallel program.
//!
//! ```text
//! cargo run --release -p moldable-bench --bin empirical
//! ```

use std::sync::Mutex;

use moldable_bench::{scheduler_lineup, write_result, Table, Workload};
use moldable_graph::TaskGraph;
use moldable_model::ModelClass;
use moldable_sim::{simulate, SimOptions};

const P_TOTAL: u32 = 64;
const SEEDS: u64 = 5;

struct Cell {
    workload: Workload,
    class: ModelClass,
    /// mean normalized makespan per scheduler, in line-up order
    ratios: Vec<f64>,
}

fn run_cell(workload: Workload, class: ModelClass) -> Cell {
    let lineup = scheduler_lineup();
    let mut sums = vec![0.0f64; lineup.len()];
    for seed in 0..SEEDS {
        let g: TaskGraph = workload.build(class, P_TOTAL, seed * 7919 + 13);
        let lb = g.bounds(P_TOTAL).lower_bound();
        assert!(lb > 0.0);
        for (i, spec) in lineup.iter().enumerate() {
            let mut s = (spec.make)(class);
            let sched = simulate(&g, s.as_mut(), &SimOptions::new(P_TOTAL))
                .expect("schedulers handle all workloads");
            sched.validate(&g).expect("valid schedule");
            sums[i] += sched.makespan / lb;
        }
    }
    #[allow(clippy::cast_precision_loss)]
    let ratios = sums.iter().map(|s| s / SEEDS as f64).collect();
    Cell {
        workload,
        class,
        ratios,
    }
}

fn main() {
    let lineup = scheduler_lineup();
    let names: Vec<&str> = lineup.iter().map(|s| s.name).collect();

    // Work queue of all (workload, class) cells, drained by a small
    // thread pool (results guarded by a mutex; order restored after).
    let cells: Vec<(Workload, ModelClass)> = Workload::all()
        .into_iter()
        .flat_map(|w| {
            ModelClass::bounded_classes()
                .into_iter()
                .map(move |c| (w, c))
        })
        .collect();
    let results: Mutex<Vec<Cell>> = Mutex::new(Vec::with_capacity(cells.len()));
    let next: Mutex<usize> = Mutex::new(0);
    let n_threads = std::thread::available_parallelism()
        .map_or(4, std::num::NonZero::get)
        .min(8);
    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| loop {
                let i = {
                    let mut n = next.lock().expect("queue lock");
                    let i = *n;
                    *n += 1;
                    i
                };
                let Some(&(w, c)) = cells.get(i) else { break };
                let cell = run_cell(w, c);
                results.lock().expect("results lock").push(cell);
            });
        }
    });
    let mut results = results.into_inner().expect("threads joined");
    results.sort_by_key(|c| {
        (
            Workload::all().iter().position(|w| *w == c.workload),
            ModelClass::bounded_classes()
                .iter()
                .position(|m| *m == c.class),
        )
    });

    let mut header = vec!["workload", "model"];
    header.extend(&names);
    let mut t = Table::new(&header);
    // per-scheduler aggregates
    let mut totals = vec![0.0f64; names.len()];
    let mut worst = vec![0.0f64; names.len()];
    for cell in &results {
        let mut row = vec![
            cell.workload.name().to_string(),
            cell.class.name().to_string(),
        ];
        for (i, r) in cell.ratios.iter().enumerate() {
            row.push(format!("{r:.3}"));
            totals[i] += r;
            worst[i] = worst[i].max(*r);
        }
        t.row(row);
    }
    let mut mean_row = vec!["MEAN".to_string(), "-".to_string()];
    let mut worst_row = vec!["WORST".to_string(), "-".to_string()];
    #[allow(clippy::cast_precision_loss)]
    for i in 0..names.len() {
        mean_row.push(format!("{:.3}", totals[i] / results.len() as f64));
        worst_row.push(format!("{:.3}", worst[i]));
    }
    t.row(mean_row);
    t.row(worst_row);

    println!("Empirical evaluation on realistic workflows (P = {P_TOTAL}, {SEEDS} seeds/cell)");
    println!("values: makespan / max(A_min/P, C_min)  — lower is better; 1.0 is unbeatable\n");
    let rendered = t.render();
    println!("{rendered}");
    println!("Worst-case guarantees for online(paper): roofline 2.62, comm 3.61,");
    println!("amdahl 4.74, general 5.72 — observe how far below them practice sits.");
    write_result("empirical.txt", &rendered);
    write_result("empirical.csv", &t.to_csv());
}
