//! The ratio-versus-μ curves behind Theorems 1–4: for each model, the
//! Lemma 5 competitive ratio as a function of μ (with `x = x*(μ)`),
//! sampled densely for plotting. The minima of these curves are the
//! Table 1 upper bounds.
//!
//! ```text
//! cargo run --release -p moldable-bench --bin ratio_curves
//! ```

use moldable_analysis::{amdahl, communication, general, roofline, upper_bound};
use moldable_bench::{par_map, write_result, Table};
use moldable_model::{ModelClass, MU_MAX};

fn main() {
    let mut t = Table::new(&["mu", "roofline", "communication", "amdahl", "general"]);
    let steps = 200;
    // The μ grid points are independent evaluations; fan out, then emit
    // the rows in grid order so the CSV is identical to a serial run.
    let rows = par_map((1..=steps).collect(), |i| {
        #[allow(clippy::cast_precision_loss)]
        let mu = MU_MAX * f64::from(i) / f64::from(steps);
        (
            mu,
            roofline::ratio_at(mu),
            communication::ratio_at(mu),
            amdahl::ratio_at(mu),
            general::ratio_at(mu),
        )
    });
    let fmt = |v: f64| {
        if v.is_finite() {
            format!("{v:.6}")
        } else {
            String::from("inf")
        }
    };
    for (mu, r, c, a, g) in rows {
        t.row(vec![
            format!("{mu:.6}"),
            fmt(r),
            fmt(c),
            fmt(a),
            fmt(g),
        ]);
    }
    write_result("ratio_curves.csv", &t.to_csv());

    println!("ratio(mu) curves sampled at {steps} points; minima (Table 1):");
    for class in ModelClass::bounded_classes() {
        let b = upper_bound(class);
        println!(
            "  {:>14}: min ratio {:.4} at mu* = {:.4} (x* = {:.4})",
            class.name(),
            b.ratio,
            b.mu,
            b.x
        );
    }
    println!("\nfull series in results/ratio_curves.csv (plot mu vs each column;");
    println!("the communication and general curves are infinite where the");
    println!("beta-constraint is infeasible).");
}
