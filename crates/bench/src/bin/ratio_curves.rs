//! The ratio-versus-μ curves behind Theorems 1–4, side by side with
//! the Improved'23 dual-allocation envelopes: for each model and each
//! registered algorithm, the competitive-ratio envelope as a function
//! of μ (with `x = x*(μ)`), sampled densely for plotting. The minima
//! of these curves are the Table 1 upper bounds and the Improved'23
//! envelope constants in the scheduler registry.
//!
//! ```text
//! cargo run --release -p moldable-bench --bin ratio_curves
//! ```

use moldable_analysis::{amdahl, communication, general, improved, roofline, upper_bound};
use moldable_bench::{par_map, write_result, Table};
use moldable_model::{ModelClass, MU_MAX};

fn main() {
    let mut t = Table::new(&[
        "mu",
        "roofline",
        "communication",
        "amdahl",
        "general",
        "i23 roofline",
        "i23 communication",
        "i23 amdahl",
        "i23 general",
    ]);
    let steps = 200;
    // The μ grid points are independent evaluations; fan out, then emit
    // the rows in grid order so the CSV is identical to a serial run.
    let rows = par_map((1..=steps).collect(), |i| {
        #[allow(clippy::cast_precision_loss)]
        let mu = MU_MAX * f64::from(i) / f64::from(steps);
        (
            mu,
            [
                roofline::ratio_at(mu),
                communication::ratio_at(mu),
                amdahl::ratio_at(mu),
                general::ratio_at(mu),
            ],
            [
                improved::roofline::ratio_at(mu),
                improved::communication::ratio_at(mu),
                improved::amdahl::ratio_at(mu),
                improved::general::ratio_at(mu),
            ],
        )
    });
    let fmt = |v: f64| {
        if v.is_finite() {
            format!("{v:.6}")
        } else {
            String::from("inf")
        }
    };
    for (mu, icpp, i23) in rows {
        let mut cells = vec![format!("{mu:.6}")];
        cells.extend(icpp.into_iter().map(fmt));
        cells.extend(i23.into_iter().map(fmt));
        t.row(cells);
    }
    write_result("ratio_curves.csv", &t.to_csv());

    println!("ratio(mu) curves sampled at {steps} points; minima (Table 1 / registry):");
    for class in ModelClass::bounded_classes() {
        let b = upper_bound(class);
        let b23 = improved::upper_bound(class);
        println!(
            "  {:>14}: icpp22 min {:.4} at mu* = {:.4} (x* = {:.4}); i23 min {:.4} at mu* = {:.4}",
            class.name(),
            b.ratio,
            b.mu,
            b.x,
            b23.ratio,
            b23.mu
        );
    }
    println!("\nfull series in results/ratio_curves.csv (plot mu vs each column;");
    println!("the communication and general curves are infinite where the");
    println!("beta-constraint is infeasible; the i23 columns are the");
    println!("Improved'23 dual-allocation envelopes from arXiv 2304.14127).");
}
