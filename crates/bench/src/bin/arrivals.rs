//! Online *independent* tasks with release dates (Ye et al.'s model
//! from the paper's Table 2): a synthetic arrival stream is fed to the
//! schedulers through the engine's timed-arrival events, and we report
//! makespan plus mean flow time (completion − release) under varying
//! load.
//!
//! ```text
//! cargo run --release -p moldable-bench --bin arrivals
//! ```

use moldable_bench::{write_result, Table};
use moldable_core::baselines::EctScheduler;
use moldable_core::{EasyBackfillScheduler, OnlineScheduler};
use moldable_model::rng::Rng;
use moldable_model::rng::StdRng;
use moldable_model::sample::ParamDistribution;
use moldable_model::{ModelClass, SpeedupModel};
use moldable_sim::{simulate_instance, Scheduler, SimOptions, TimedArrivals};

const P_TOTAL: u32 = 32;
const N_TASKS: usize = 300;

/// Exponential-ish inter-arrival times tuned so the offered load is
/// `rho` × platform capacity.
fn stream(rho: f64, seed: u64) -> Vec<(f64, SpeedupModel)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = ParamDistribution {
        w_min: 1.0,
        w_max: 100.0,
        ..Default::default()
    };
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(N_TASKS);
    // mean serial work of the log-uniform draw ~ (w_max - w_min)/ln(w_max/w_min)
    let mean_work = 99.0 / (100.0f64).ln();
    let mean_gap = mean_work / (rho * f64::from(P_TOTAL));
    for _ in 0..N_TASKS {
        // inverse-CDF exponential
        let u: f64 = rng.gen_range(1e-9..1.0);
        t += -u.ln() * mean_gap;
        out.push((t, dist.sample(ModelClass::Amdahl, P_TOTAL, &mut rng)));
    }
    out
}

fn run(rho: f64, seed: u64, sched: &mut dyn Scheduler) -> (f64, f64) {
    let mut inst = TimedArrivals::new(stream(rho, seed));
    let s = simulate_instance(&mut inst, sched, &SimOptions::new(P_TOTAL))
        .expect("arrival stream schedules");
    s.check_capacity(1e-9).expect("valid");
    // The engine records release times, so flow time is built in.
    (s.makespan, s.mean_flow())
}

fn main() {
    println!("Independent tasks with release dates (P = {P_TOTAL}, {N_TASKS} tasks/stream)");
    println!("rho = offered load; flow = mean completion - release\n");
    let mut t = Table::new(&[
        "rho",
        "online makespan",
        "online flow",
        "ect flow",
        "backfill flow",
    ]);
    let mu = ModelClass::Amdahl.optimal_mu();
    for &rho in &[0.3, 0.6, 0.9, 1.2] {
        let seeds = 5u64;
        let mut acc = [0.0f64; 4];
        for seed in 0..seeds {
            let (mk, fl) = run(
                rho,
                seed,
                &mut OnlineScheduler::for_class(ModelClass::Amdahl),
            );
            let (_, fe) = run(rho, seed, &mut EctScheduler::new());
            let (_, fb) = run(rho, seed, &mut EasyBackfillScheduler::new(mu));
            acc[0] += mk;
            acc[1] += fl;
            acc[2] += fe;
            acc[3] += fb;
        }
        #[allow(clippy::cast_precision_loss)]
        let k = seeds as f64;
        t.row(vec![
            format!("{rho:.1}"),
            format!("{:.1}", acc[0] / k),
            format!("{:.1}", acc[1] / k),
            format!("{:.1}", acc[2] / k),
            format!("{:.1}", acc[3] / k),
        ]);
    }
    println!("{}", t.render());
    println!("At low load all schedulers are release-bound; under saturation the");
    println!("allocation policy decides the queueing behaviour.");
    write_result("arrivals.csv", &t.to_csv());
}
