//! Engine throughput smoke test: how many tasks per second does the
//! simulation hot path sustain? Writes `results/BENCH_engine.json` so
//! successive PRs have a performance trajectory to compare against.
//!
//! ```text
//! cargo run --release -p moldable-bench --bin perf_smoke
//! ```
//!
//! Workloads:
//! * `layered_1m_{legacy,batched}` — a 1 000 × 1 000 layered random
//!   DAG (10^6 mixed general-model tasks, geometric-skip construction)
//!   under the online scheduler on P = 256, simulated once by the
//!   general per-task engine and once by the data-oriented batched
//!   engine — identical makespans, so the ratio is pure engine
//!   overhead (CI gates batched ≥ 2.5× legacy);
//! * `thm6_communication_p1601_{legacy,batched}` — the Theorem 6
//!   adversarial instance at P = 1601 (~868 k near-identical tasks,
//!   the allocation-memoization stress case), both engines;
//! * `thm9_adaptive_l4` — the Theorem 9 adaptive chain adversary at
//!   ℓ = 4 (P = 524 288, instance revealed task by task; adaptive
//!   instances are inherently per-task, so legacy engine only);
//! * `wide_50k_{indexed,reference}_queue`, `wide_50k_batched` —
//!   50 000 independent tasks on P = 64, a deep-ready-queue stress run
//!   under the default indexed queue, the reference sorted-`Vec` scan,
//!   and the batched engine (identical makespans, different clocks);
//! * `serve_{direct,service,tcp}_500` — the same 500 scheduling
//!   requests (cholesky size 6, P = 64, 16 seeds) executed three ways:
//!   bare generate+simulate, through the service layer
//!   (`WorkerContext::handle`, adds validation/bounds/JSON), and over a
//!   real daemon socket — identical makespans, so the deltas are pure
//!   layer overhead;
//! * `serve_epoll_500`, `serve_epoll_batched_500` — the same 500
//!   requests over the non-blocking epoll transport: four closed-loop
//!   connections across four worker shards, plain submits and 32-item
//!   `submit_batch` frames. Every reply's makespan is asserted
//!   bit-equal to the service-layer expectation; CI gates the batched
//!   row at ≥ 3× the legacy `serve_tcp_500` throughput.

use std::time::Instant;

use moldable_adversary::{arbitrary, communication};
use moldable_bench::write_result;
use moldable_core::baselines::EqualShareScheduler;
use moldable_core::OnlineScheduler;
use moldable_graph::gen;
use moldable_model::rng::StdRng;
use moldable_model::sample::ParamDistribution;
use moldable_model::ModelClass;
use moldable_sim::{simulate, simulate_batched, simulate_instance, SimOptions};

struct Measurement {
    name: &'static str,
    n_tasks: usize,
    build_secs: f64,
    sim_secs: f64,
    makespan: f64,
}

impl Measurement {
    #[allow(clippy::cast_precision_loss)]
    fn tasks_per_sec(&self) -> f64 {
        // Build-only rows have no simulation phase; report 0 rather
        // than dividing by zero.
        if self.sim_secs == 0.0 {
            0.0
        } else {
            self.n_tasks as f64 / self.sim_secs
        }
    }
}

/// One graph, both engines: the legacy row carries the (one-time)
/// build cost, the batched row reuses the graph so its `build_secs`
/// is 0 by construction — the CI gate compares `sim_secs` only.
fn engine_pair(
    legacy_name: &'static str,
    batched_name: &'static str,
    g: &moldable_graph::TaskGraph,
    build_secs: f64,
    p_total: u32,
    mk_sched: impl Fn() -> OnlineScheduler,
) -> [Measurement; 2] {
    let mut sched = mk_sched();
    let t0 = Instant::now();
    let legacy = simulate(g, &mut sched, &SimOptions::new(p_total)).expect("simulates");
    let legacy_secs = t0.elapsed().as_secs_f64();
    assert_eq!(legacy.placements.len(), g.n_tasks());

    let mut sched = mk_sched();
    let t1 = Instant::now();
    let batched = simulate_batched(g, &mut sched, &SimOptions::new(p_total)).expect("simulates");
    let batched_secs = t1.elapsed().as_secs_f64();
    assert_eq!(
        legacy.makespan, batched.makespan,
        "{batched_name} diverged from {legacy_name}"
    );
    [
        Measurement {
            name: legacy_name,
            n_tasks: g.n_tasks(),
            build_secs,
            sim_secs: legacy_secs,
            makespan: legacy.makespan,
        },
        Measurement {
            name: batched_name,
            n_tasks: g.n_tasks(),
            build_secs: 0.0,
            sim_secs: batched_secs,
            makespan: batched.makespan,
        },
    ]
}

fn layered_1m() -> [Measurement; 2] {
    let p_total = 256;
    let t0 = Instant::now();
    let dist = ParamDistribution::default();
    let mut mrng = StdRng::seed_from_u64(0x5EED);
    let mut assign = gen::weighted_sampler(ModelClass::General, dist, p_total, &mut mrng);
    let mut srng = StdRng::seed_from_u64(1);
    // Geometric-skip construction: O(tasks + edges) instead of one
    // Bernoulli draw per candidate edge (10^9 draws at this size).
    let g = gen::layered_random_sparse(1_000, 1_000, 0.002, &mut srng, &mut assign);
    let build_secs = t0.elapsed().as_secs_f64();
    engine_pair(
        "layered_1m_legacy",
        "layered_1m_batched",
        &g,
        build_secs,
        p_total,
        || OnlineScheduler::for_class(ModelClass::General),
    )
}

fn thm6_communication() -> [Measurement; 2] {
    let t0 = Instant::now();
    let inst = communication::instance(1601);
    let build_secs = t0.elapsed().as_secs_f64();
    let mu = inst.mu;
    engine_pair(
        "thm6_communication_p1601_legacy",
        "thm6_communication_p1601_batched",
        &inst.graph,
        build_secs,
        inst.p_total,
        || OnlineScheduler::with_mu(mu),
    )
}

fn thm9_adaptive() -> Measurement {
    let t0 = Instant::now();
    let mut adv = arbitrary::AdaptiveChains::new(4);
    let pr = adv.params();
    let build_secs = t0.elapsed().as_secs_f64();

    let mut sched = EqualShareScheduler::new();
    let t1 = Instant::now();
    let s =
        simulate_instance(&mut adv, &mut sched, &SimOptions::new(pr.p_total)).expect("simulates");
    let sim_secs = t1.elapsed().as_secs_f64();
    Measurement {
        name: "thm9_adaptive_l4",
        n_tasks: s.placements.len(),
        build_secs,
        sim_secs,
        makespan: s.makespan,
    }
}

/// 50 000 independent tasks on P = 64: the ready queue holds tens of
/// thousands of waiting tasks, the regime where the indexed queue's
/// O(log n) operations separate from the reference scan's O(n).
fn wide_50k(reference: bool) -> Measurement {
    let p_total = 64;
    let t0 = Instant::now();
    let dist = ParamDistribution::default();
    let mut mrng = StdRng::seed_from_u64(0x91DE);
    let mut assign = gen::weighted_sampler(ModelClass::General, dist, p_total, &mut mrng);
    let g = gen::independent(50_000, &mut assign);
    let build_secs = t0.elapsed().as_secs_f64();

    let mut sched = OnlineScheduler::for_class(ModelClass::General);
    if reference {
        sched = sched.with_reference_queue();
    }
    let t1 = Instant::now();
    let s = simulate(&g, &mut sched, &SimOptions::new(p_total)).expect("simulates");
    let sim_secs = t1.elapsed().as_secs_f64();
    assert_eq!(s.placements.len(), g.n_tasks());
    Measurement {
        name: if reference {
            "wide_50k_reference_queue"
        } else {
            "wide_50k_indexed_queue"
        },
        n_tasks: g.n_tasks(),
        build_secs,
        sim_secs,
        makespan: s.makespan,
    }
}

/// The same 50 000-task instance under the batched engine (indexed
/// queue): deep-queue behaviour of the data-oriented hot path.
fn wide_50k_batched() -> Measurement {
    let p_total = 64;
    let t0 = Instant::now();
    let dist = ParamDistribution::default();
    let mut mrng = StdRng::seed_from_u64(0x91DE);
    let mut assign = gen::weighted_sampler(ModelClass::General, dist, p_total, &mut mrng);
    let g = gen::independent(50_000, &mut assign);
    let build_secs = t0.elapsed().as_secs_f64();

    let mut sched = OnlineScheduler::for_class(ModelClass::General);
    let t1 = Instant::now();
    let s = simulate_batched(&g, &mut sched, &SimOptions::new(p_total)).expect("simulates");
    let sim_secs = t1.elapsed().as_secs_f64();
    assert_eq!(s.placements.len(), g.n_tasks());
    Measurement {
        name: "wide_50k_batched",
        n_tasks: g.n_tasks(),
        build_secs,
        sim_secs,
        makespan: s.makespan,
    }
}

/// Frozen-CSR construction: rebuild the largest generator instance CI
/// builds in full (wavefront 1000 — 10^6 tasks, ~2×10^6 edges) from
/// its own frozen edge list, once through the generators' trusted
/// `add_edge_topo` fast path and once through the checked `add_edge`
/// API (cycle check + duplicate hashing), the pre-refactor cost model.
/// Task insertion, model clones, and `freeze` are identical work on
/// both sides, so the delta is purely the per-edge validation cost the
/// generators no longer pay. Build-only rows: `sim_secs` is 0 by
/// construction.
fn graph_build(checked: bool) -> Measurement {
    let g = gen::by_name("wavefront", 1_000, ModelClass::Amdahl, 64, 11).expect("shape");
    let t0 = Instant::now();
    let mut b = moldable_graph::GraphBuilder::with_capacity(g.n_tasks());
    for t in g.task_ids() {
        b.add_task(g.model(t).clone());
    }
    for t in g.task_ids() {
        for &s in g.succs(t) {
            if checked {
                b.add_edge(t, s).expect("frozen edges are acyclic");
            } else {
                b.add_edge_topo(t, s);
            }
        }
    }
    let rebuilt = b.freeze();
    let build_secs = t0.elapsed().as_secs_f64();
    assert_eq!(rebuilt.n_edges(), g.n_edges(), "rebuild dropped edges");
    Measurement {
        name: if checked {
            "graph_build_checked_wavefront_1000"
        } else {
            "graph_build_topo_wavefront_1000"
        },
        n_tasks: g.n_tasks(),
        build_secs,
        sim_secs: 0.0,
        makespan: 0.0,
    }
}

/// Shared request template for the three serve-path measurements.
const SERVE_REQUESTS: usize = 500;
const SERVE_SEEDS: u64 = 16;
const SERVE_P: u32 = 64;

fn serve_submit(seed: u64) -> moldable_serve::proto::SubmitRequest {
    moldable_serve::proto::SubmitRequest {
        graph: moldable_serve::proto::GraphSpec::Named {
            shape: "cholesky".into(),
            size: 6,
        },
        p: Some(SERVE_P),
        model: "amdahl".into(),
        seed,
        scheduler: "online".into(),
        algo: "icpp22".into(),
        mu: None,
        policy: None,
        include_allocations: false,
    }
}

/// Baseline: the same requests executed as bare generate+simulate calls
/// with a warm cross-request [`moldable_core::AllocCache`], no service
/// layer at all.
fn serve_direct() -> Measurement {
    let t0 = Instant::now();
    let mu = ModelClass::Amdahl.optimal_mu();
    let mut n_tasks = 0;
    let mut makespan = 0.0;
    let mut cache: Option<moldable_core::AllocCache> = None;
    for i in 0..SERVE_REQUESTS {
        let seed = 42 + (i as u64 % SERVE_SEEDS);
        let g = gen::by_name("cholesky", 6, ModelClass::Amdahl, SERVE_P, seed).expect("shape");
        let mut sched = OnlineScheduler::with_mu(mu);
        if let Some(c) = cache.take() {
            sched = sched.with_alloc_cache(c);
        }
        let s = simulate(&g, &mut sched, &SimOptions::new(SERVE_P)).expect("simulates");
        cache = sched.take_alloc_cache();
        n_tasks += g.n_tasks();
        makespan = s.makespan;
    }
    Measurement {
        name: "serve_direct_500",
        n_tasks,
        build_secs: 0.0,
        sim_secs: t0.elapsed().as_secs_f64(),
        makespan,
    }
}

/// The service layer in-process: adds request interpretation, schedule
/// validation, Lemma 2 bounds, and JSON reply assembly. Run once with
/// the worker's frozen-graph LRU (the default) and once with caching
/// disabled (`graph_cache_cap = 0`), so the cache's contribution to
/// service throughput is its own row.
fn serve_service(cached: bool) -> Measurement {
    let mut ctx = moldable_serve::WorkerContext::with_limits(moldable_serve::ServiceLimits {
        graph_cache_cap: if cached { 64 } else { 0 },
        ..moldable_serve::ServiceLimits::default()
    });
    let t0 = Instant::now();
    let mut n_tasks = 0;
    let mut makespan = 0.0;
    for i in 0..SERVE_REQUESTS {
        let reply = ctx.handle(&serve_submit(42 + (i as u64 % SERVE_SEEDS)));
        assert_eq!(
            reply
                .get("status")
                .and_then(moldable_serve::json::Json::as_str),
            Some("ok")
        );
        n_tasks += reply
            .get("n_tasks")
            .and_then(moldable_serve::json::Json::as_u64)
            .expect("n_tasks") as usize;
        makespan = reply
            .get("makespan")
            .and_then(moldable_serve::json::Json::as_f64)
            .expect("makespan");
    }
    // With the 16-seed request stream, a warm cache serves 484 of the
    // 500 graphs without construction.
    if cached {
        assert!(ctx.graph_cache_hits() > 0, "cache never hit");
    } else {
        assert_eq!(ctx.graph_cache_hits(), 0, "disabled cache hit");
    }
    Measurement {
        name: if cached {
            "serve_service_cached_500"
        } else {
            "serve_service_uncached_500"
        },
        n_tasks,
        build_secs: 0.0,
        sim_secs: t0.elapsed().as_secs_f64(),
        makespan,
    }
}

/// The full daemon round-trip through the **legacy** thread-per-
/// connection transport: loopback TCP, frame codec, bounded queue,
/// worker pool — one closed-loop client, one worker. This is the
/// baseline the epoll rows are gated against.
fn serve_tcp() -> Measurement {
    use moldable_serve::server::{Server, ServerConfig, Transport};
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        transport: Transport::Threads,
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client =
        moldable_serve::Client::connect(&server.local_addr().to_string()).expect("connect");
    // Warm the worker's caches so steady-state latency is measured.
    let _ = client
        .call(&moldable_serve::proto::Request::Submit(Box::new(
            serve_submit(42),
        )))
        .expect("warmup");

    let t0 = Instant::now();
    let mut n_tasks = 0;
    let mut makespan = 0.0;
    for i in 0..SERVE_REQUESTS {
        let req = moldable_serve::proto::Request::Submit(Box::new(serve_submit(
            42 + (i as u64 % SERVE_SEEDS),
        )));
        let reply = client.call(&req).expect("call");
        assert_eq!(
            reply
                .get("status")
                .and_then(moldable_serve::json::Json::as_str),
            Some("ok")
        );
        n_tasks += reply
            .get("n_tasks")
            .and_then(moldable_serve::json::Json::as_u64)
            .expect("n_tasks") as usize;
        makespan = reply
            .get("makespan")
            .and_then(moldable_serve::json::Json::as_f64)
            .expect("makespan");
    }
    let sim_secs = t0.elapsed().as_secs_f64();
    drop(client);
    server.trigger_drain();
    server.join();
    Measurement {
        name: "serve_tcp_500",
        n_tasks,
        build_secs: 0.0,
        sim_secs,
        makespan,
    }
}

/// The epoll event-loop transport at its intended operating point:
/// four closed-loop connections over four worker shards, the same 500
/// requests partitioned round-robin exactly like `loadgen` does.
/// `batch` > 1 packs that many submits per `submit_batch` frame. Every
/// reply's makespan is asserted bit-equal to the per-seed expectation
/// computed through a bare [`moldable_serve::WorkerContext`], so the transport cannot
/// change a scheduling decision and still pass.
fn serve_epoll(batch: usize) -> Measurement {
    use moldable_serve::json::Json;
    use moldable_serve::proto::Request;
    use moldable_serve::server::{Server, ServerConfig, Transport};

    let clients = 4;
    // Per-seed ground truth from the service layer (no wire at all).
    let mut ctx = moldable_serve::WorkerContext::new();
    let expected: Vec<(f64, u64)> = (0..SERVE_SEEDS)
        .map(|s| {
            let reply = ctx.handle(&serve_submit(42 + s));
            (
                reply
                    .get("makespan")
                    .and_then(Json::as_f64)
                    .expect("makespan"),
                reply.get("n_tasks").and_then(Json::as_u64).expect("n_tasks"),
            )
        })
        .collect();

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: clients,
        transport: Transport::Epoll,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().to_string();

    // Connect and warm every shard before the clock starts.
    let mut conns: Vec<moldable_serve::Client> = (0..clients)
        .map(|_| {
            let mut c = moldable_serve::Client::connect(&addr).expect("connect");
            let warm = c
                .call(&Request::Submit(Box::new(serve_submit(42))))
                .expect("warmup");
            assert_eq!(warm.get("status").and_then(Json::as_str), Some("ok"));
            c
        })
        .collect();

    let t0 = Instant::now();
    let n_tasks = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for (client_idx, client) in conns.iter_mut().enumerate() {
            let expected = &expected;
            let n_tasks = &n_tasks;
            scope.spawn(move || {
                let mine: Vec<u64> = (0..SERVE_REQUESTS)
                    .filter(|i| i % clients == client_idx)
                    .map(|i| 42 + (i as u64 % SERVE_SEEDS))
                    .collect();
                let check = |reply: &Json, seed: u64| {
                    assert_eq!(
                        reply.get("status").and_then(Json::as_str),
                        Some("ok"),
                        "{}",
                        reply.encode()
                    );
                    let (want, tasks) = expected[(seed - 42) as usize];
                    let got = reply
                        .get("makespan")
                        .and_then(Json::as_f64)
                        .expect("makespan");
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "seed {seed}: transport changed a makespan"
                    );
                    n_tasks.fetch_add(tasks as usize, std::sync::atomic::Ordering::Relaxed);
                };
                for group in mine.chunks(batch.max(1)) {
                    if batch <= 1 {
                        let reply = client
                            .call(&Request::Submit(Box::new(serve_submit(group[0]))))
                            .expect("call");
                        check(&reply, group[0]);
                        continue;
                    }
                    let frame = Request::Batch(
                        group
                            .iter()
                            .map(|&s| Request::Submit(Box::new(serve_submit(s))).encode())
                            .collect(),
                    );
                    let reply = client.call(&frame).expect("batch call");
                    assert_eq!(reply.get("status").and_then(Json::as_str), Some("ok"));
                    let results = reply
                        .get("results")
                        .and_then(Json::as_arr)
                        .expect("results");
                    assert_eq!(results.len(), group.len());
                    for (r, &seed) in results.iter().zip(group) {
                        check(r, seed);
                    }
                }
            });
        }
    });
    let sim_secs = t0.elapsed().as_secs_f64();
    drop(conns);
    server.trigger_drain();
    server.join();
    Measurement {
        name: if batch > 1 {
            "serve_epoll_batched_500"
        } else {
            "serve_epoll_500"
        },
        n_tasks: n_tasks.into_inner(),
        build_secs: 0.0,
        sim_secs,
        makespan: expected[(SERVE_REQUESTS - 1) % SERVE_SEEDS as usize].0,
    }
}

fn main() {
    println!("Engine throughput smoke test\n");
    let mut runs = Vec::new();
    runs.extend(layered_1m());
    runs.extend(thm6_communication());
    runs.push(thm9_adaptive());
    runs.push(wide_50k(false));
    runs.push(wide_50k(true));
    runs.push(wide_50k_batched());
    runs.push(graph_build(false));
    runs.push(graph_build(true));
    runs.push(serve_direct());
    runs.push(serve_service(true));
    runs.push(serve_service(false));
    runs.push(serve_tcp());
    runs.push(serve_epoll(1));
    runs.push(serve_epoll(32));
    let by_name = |name: &str| {
        runs.iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("no run named {name}"))
    };
    // Same instance, same decisions: only the queue implementation /
    // engine (and therefore the wall clock) may differ between these.
    assert_eq!(
        by_name("wide_50k_indexed_queue").makespan,
        by_name("wide_50k_reference_queue").makespan,
        "queues must agree"
    );
    assert_eq!(
        by_name("wide_50k_indexed_queue").makespan,
        by_name("wide_50k_batched").makespan,
        "engines must agree"
    );
    // The serve paths execute identical request streams: the wire and
    // service layers — and the frozen-graph cache — must not change a
    // single scheduling decision.
    let serve_makespan = by_name("serve_direct_500").makespan;
    for name in [
        "serve_service_cached_500",
        "serve_service_uncached_500",
        "serve_tcp_500",
        "serve_epoll_500",
        "serve_epoll_batched_500",
    ] {
        assert_eq!(by_name(name).makespan, serve_makespan, "{name} must agree");
    }

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, m) in runs.iter().enumerate() {
        println!(
            "  {:<26} {:>9} tasks  build {:>8.3}s  sim {:>8.3}s  {:>12.0} tasks/s",
            m.name,
            m.n_tasks,
            m.build_secs,
            m.sim_secs,
            m.tasks_per_sec()
        );
        json.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"n_tasks\": {}, ",
                "\"build_secs\": {:.6}, \"sim_secs\": {:.6}, ",
                "\"tasks_per_sec\": {:.1}, \"makespan\": {:.6}}}{}\n"
            ),
            m.name,
            m.n_tasks,
            m.build_secs,
            m.sim_secs,
            m.tasks_per_sec(),
            m.makespan,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    write_result("BENCH_engine.json", &json);
}
