//! Engine throughput smoke test: how many tasks per second does the
//! simulation hot path sustain? Writes `results/BENCH_engine.json` so
//! successive PRs have a performance trajectory to compare against.
//!
//! ```text
//! cargo run --release -p moldable-bench --bin perf_smoke
//! ```
//!
//! Workloads:
//! * `layered_1m` — a 1 000 × 1 000 layered random DAG (10^6 mixed
//!   general-model tasks) under the online scheduler on P = 256;
//! * `thm6_communication_p1601` — the Theorem 6 adversarial instance at
//!   P = 1601 (~868 k near-identical tasks, the allocation-memoization
//!   stress case);
//! * `thm9_adaptive_l4` — the Theorem 9 adaptive chain adversary at
//!   ℓ = 4 (P = 524 288, instance revealed task by task);
//! * `wide_50k_{indexed,reference}_queue` — 50 000 independent tasks
//!   on P = 64, a deep-ready-queue stress run once under the default
//!   indexed queue and once under the reference sorted-`Vec` scan to
//!   expose the asymptotic gap (identical makespans, different clocks);
//! * `serve_{direct,service,tcp}_500` — the same 500 scheduling
//!   requests (cholesky size 6, P = 64, 16 seeds) executed three ways:
//!   bare generate+simulate, through the service layer
//!   (`WorkerContext::handle`, adds validation/bounds/JSON), and over a
//!   real daemon socket — identical makespans, so the deltas are pure
//!   layer overhead.

use std::time::Instant;

use moldable_adversary::{arbitrary, communication};
use moldable_bench::write_result;
use moldable_core::baselines::EqualShareScheduler;
use moldable_core::OnlineScheduler;
use moldable_graph::gen;
use moldable_model::rng::StdRng;
use moldable_model::sample::ParamDistribution;
use moldable_model::ModelClass;
use moldable_sim::{simulate, simulate_instance, SimOptions};

struct Measurement {
    name: &'static str,
    n_tasks: usize,
    build_secs: f64,
    sim_secs: f64,
    makespan: f64,
}

impl Measurement {
    #[allow(clippy::cast_precision_loss)]
    fn tasks_per_sec(&self) -> f64 {
        // Build-only rows have no simulation phase; report 0 rather
        // than dividing by zero.
        if self.sim_secs == 0.0 {
            0.0
        } else {
            self.n_tasks as f64 / self.sim_secs
        }
    }
}

fn layered_1m() -> Measurement {
    let p_total = 256;
    let t0 = Instant::now();
    let dist = ParamDistribution::default();
    let mut mrng = StdRng::seed_from_u64(0x5EED);
    let mut assign = gen::weighted_sampler(ModelClass::General, dist, p_total, &mut mrng);
    let mut srng = StdRng::seed_from_u64(1);
    let g = gen::layered_random(1_000, 1_000, 0.002, &mut srng, &mut assign);
    let build_secs = t0.elapsed().as_secs_f64();

    let mut sched = OnlineScheduler::for_class(ModelClass::General);
    let t1 = Instant::now();
    let s = simulate(&g, &mut sched, &SimOptions::new(p_total)).expect("simulates");
    let sim_secs = t1.elapsed().as_secs_f64();
    assert_eq!(s.placements.len(), g.n_tasks());
    Measurement {
        name: "layered_1m",
        n_tasks: g.n_tasks(),
        build_secs,
        sim_secs,
        makespan: s.makespan,
    }
}

fn thm6_communication() -> Measurement {
    let t0 = Instant::now();
    let inst = communication::instance(1601);
    let build_secs = t0.elapsed().as_secs_f64();
    let n_tasks = inst.graph.n_tasks();

    let mut sched = OnlineScheduler::with_mu(inst.mu);
    let t1 = Instant::now();
    let s = simulate(&inst.graph, &mut sched, &SimOptions::new(inst.p_total)).expect("simulates");
    let sim_secs = t1.elapsed().as_secs_f64();
    Measurement {
        name: "thm6_communication_p1601",
        n_tasks,
        build_secs,
        sim_secs,
        makespan: s.makespan,
    }
}

fn thm9_adaptive() -> Measurement {
    let t0 = Instant::now();
    let mut adv = arbitrary::AdaptiveChains::new(4);
    let pr = adv.params();
    let build_secs = t0.elapsed().as_secs_f64();

    let mut sched = EqualShareScheduler::new();
    let t1 = Instant::now();
    let s = simulate_instance(&mut adv, &mut sched, &SimOptions::new(pr.p_total))
        .expect("simulates");
    let sim_secs = t1.elapsed().as_secs_f64();
    Measurement {
        name: "thm9_adaptive_l4",
        n_tasks: s.placements.len(),
        build_secs,
        sim_secs,
        makespan: s.makespan,
    }
}

/// 50 000 independent tasks on P = 64: the ready queue holds tens of
/// thousands of waiting tasks, the regime where the indexed queue's
/// O(log n) operations separate from the reference scan's O(n).
fn wide_50k(reference: bool) -> Measurement {
    let p_total = 64;
    let t0 = Instant::now();
    let dist = ParamDistribution::default();
    let mut mrng = StdRng::seed_from_u64(0x91DE);
    let mut assign = gen::weighted_sampler(ModelClass::General, dist, p_total, &mut mrng);
    let g = gen::independent(50_000, &mut assign);
    let build_secs = t0.elapsed().as_secs_f64();

    let mut sched = OnlineScheduler::for_class(ModelClass::General);
    if reference {
        sched = sched.with_reference_queue();
    }
    let t1 = Instant::now();
    let s = simulate(&g, &mut sched, &SimOptions::new(p_total)).expect("simulates");
    let sim_secs = t1.elapsed().as_secs_f64();
    assert_eq!(s.placements.len(), g.n_tasks());
    Measurement {
        name: if reference {
            "wide_50k_reference_queue"
        } else {
            "wide_50k_indexed_queue"
        },
        n_tasks: g.n_tasks(),
        build_secs,
        sim_secs,
        makespan: s.makespan,
    }
}

/// Frozen-CSR construction: rebuild the largest generator instance CI
/// builds in full (wavefront 1000 — 10^6 tasks, ~2×10^6 edges) from
/// its own frozen edge list, once through the generators' trusted
/// `add_edge_topo` fast path and once through the checked `add_edge`
/// API (cycle check + duplicate hashing), the pre-refactor cost model.
/// Task insertion, model clones, and `freeze` are identical work on
/// both sides, so the delta is purely the per-edge validation cost the
/// generators no longer pay. Build-only rows: `sim_secs` is 0 by
/// construction.
fn graph_build(checked: bool) -> Measurement {
    let g = gen::by_name("wavefront", 1_000, ModelClass::Amdahl, 64, 11).expect("shape");
    let t0 = Instant::now();
    let mut b = moldable_graph::GraphBuilder::with_capacity(g.n_tasks());
    for t in g.task_ids() {
        b.add_task(g.model(t).clone());
    }
    for t in g.task_ids() {
        for &s in g.succs(t) {
            if checked {
                b.add_edge(t, s).expect("frozen edges are acyclic");
            } else {
                b.add_edge_topo(t, s);
            }
        }
    }
    let rebuilt = b.freeze();
    let build_secs = t0.elapsed().as_secs_f64();
    assert_eq!(rebuilt.n_edges(), g.n_edges(), "rebuild dropped edges");
    Measurement {
        name: if checked {
            "graph_build_checked_wavefront_1000"
        } else {
            "graph_build_topo_wavefront_1000"
        },
        n_tasks: g.n_tasks(),
        build_secs,
        sim_secs: 0.0,
        makespan: 0.0,
    }
}

/// Shared request template for the three serve-path measurements.
const SERVE_REQUESTS: usize = 500;
const SERVE_SEEDS: u64 = 16;
const SERVE_P: u32 = 64;

fn serve_submit(seed: u64) -> moldable_serve::proto::SubmitRequest {
    moldable_serve::proto::SubmitRequest {
        graph: moldable_serve::proto::GraphSpec::Named {
            shape: "cholesky".into(),
            size: 6,
        },
        p: Some(SERVE_P),
        model: "amdahl".into(),
        seed,
        scheduler: "online".into(),
        mu: None,
        policy: None,
        include_allocations: false,
    }
}

/// Baseline: the same requests executed as bare generate+simulate calls
/// with a warm cross-request [`moldable_core::AllocCache`], no service
/// layer at all.
fn serve_direct() -> Measurement {
    let t0 = Instant::now();
    let mu = ModelClass::Amdahl.optimal_mu();
    let mut n_tasks = 0;
    let mut makespan = 0.0;
    let mut cache: Option<moldable_core::AllocCache> = None;
    for i in 0..SERVE_REQUESTS {
        let seed = 42 + (i as u64 % SERVE_SEEDS);
        let g = gen::by_name("cholesky", 6, ModelClass::Amdahl, SERVE_P, seed).expect("shape");
        let mut sched = OnlineScheduler::with_mu(mu);
        if let Some(c) = cache.take() {
            sched = sched.with_alloc_cache(c);
        }
        let s = simulate(&g, &mut sched, &SimOptions::new(SERVE_P)).expect("simulates");
        cache = sched.take_alloc_cache();
        n_tasks += g.n_tasks();
        makespan = s.makespan;
    }
    Measurement {
        name: "serve_direct_500",
        n_tasks,
        build_secs: 0.0,
        sim_secs: t0.elapsed().as_secs_f64(),
        makespan,
    }
}

/// The service layer in-process: adds request interpretation, schedule
/// validation, Lemma 2 bounds, and JSON reply assembly. Run once with
/// the worker's frozen-graph LRU (the default) and once with caching
/// disabled (`graph_cache_cap = 0`), so the cache's contribution to
/// service throughput is its own row.
fn serve_service(cached: bool) -> Measurement {
    let mut ctx = moldable_serve::WorkerContext::with_limits(moldable_serve::ServiceLimits {
        graph_cache_cap: if cached { 64 } else { 0 },
        ..moldable_serve::ServiceLimits::default()
    });
    let t0 = Instant::now();
    let mut n_tasks = 0;
    let mut makespan = 0.0;
    for i in 0..SERVE_REQUESTS {
        let reply = ctx.handle(&serve_submit(42 + (i as u64 % SERVE_SEEDS)));
        assert_eq!(
            reply.get("status").and_then(moldable_serve::json::Json::as_str),
            Some("ok")
        );
        n_tasks += reply
            .get("n_tasks")
            .and_then(moldable_serve::json::Json::as_u64)
            .expect("n_tasks") as usize;
        makespan = reply
            .get("makespan")
            .and_then(moldable_serve::json::Json::as_f64)
            .expect("makespan");
    }
    // With the 16-seed request stream, a warm cache serves 484 of the
    // 500 graphs without construction.
    if cached {
        assert!(ctx.graph_cache_hits() > 0, "cache never hit");
    } else {
        assert_eq!(ctx.graph_cache_hits(), 0, "disabled cache hit");
    }
    Measurement {
        name: if cached {
            "serve_service_cached_500"
        } else {
            "serve_service_uncached_500"
        },
        n_tasks,
        build_secs: 0.0,
        sim_secs: t0.elapsed().as_secs_f64(),
        makespan,
    }
}

/// The full daemon round-trip: loopback TCP, frame codec, bounded
/// queue, worker pool — one closed-loop client.
fn serve_tcp() -> Measurement {
    use moldable_serve::server::{Server, ServerConfig};
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("bind");
    let mut client =
        moldable_serve::Client::connect(&server.local_addr().to_string()).expect("connect");
    // Warm the worker's caches so steady-state latency is measured.
    let _ = client
        .call(&moldable_serve::proto::Request::Submit(Box::new(
            serve_submit(42),
        )))
        .expect("warmup");

    let t0 = Instant::now();
    let mut n_tasks = 0;
    let mut makespan = 0.0;
    for i in 0..SERVE_REQUESTS {
        let req = moldable_serve::proto::Request::Submit(Box::new(serve_submit(
            42 + (i as u64 % SERVE_SEEDS),
        )));
        let reply = client.call(&req).expect("call");
        assert_eq!(
            reply.get("status").and_then(moldable_serve::json::Json::as_str),
            Some("ok")
        );
        n_tasks += reply
            .get("n_tasks")
            .and_then(moldable_serve::json::Json::as_u64)
            .expect("n_tasks") as usize;
        makespan = reply
            .get("makespan")
            .and_then(moldable_serve::json::Json::as_f64)
            .expect("makespan");
    }
    let sim_secs = t0.elapsed().as_secs_f64();
    drop(client);
    server.trigger_drain();
    server.join();
    Measurement {
        name: "serve_tcp_500",
        n_tasks,
        build_secs: 0.0,
        sim_secs,
        makespan,
    }
}

fn main() {
    println!("Engine throughput smoke test\n");
    let runs = [
        layered_1m(),
        thm6_communication(),
        thm9_adaptive(),
        wide_50k(false),
        wide_50k(true),
        graph_build(false),
        graph_build(true),
        serve_direct(),
        serve_service(true),
        serve_service(false),
        serve_tcp(),
    ];
    let by_name = |name: &str| {
        runs.iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("no run named {name}"))
    };
    // Same instance, same decisions: only the queue implementation (and
    // therefore the wall clock) may differ between these two runs.
    assert_eq!(
        by_name("wide_50k_indexed_queue").makespan,
        by_name("wide_50k_reference_queue").makespan,
        "queues must agree"
    );
    // The serve paths execute identical request streams: the wire and
    // service layers — and the frozen-graph cache — must not change a
    // single scheduling decision.
    let serve_makespan = by_name("serve_direct_500").makespan;
    for name in [
        "serve_service_cached_500",
        "serve_service_uncached_500",
        "serve_tcp_500",
    ] {
        assert_eq!(by_name(name).makespan, serve_makespan, "{name} must agree");
    }

    let mut json = String::from("{\n  \"benchmarks\": [\n");
    for (i, m) in runs.iter().enumerate() {
        println!(
            "  {:<26} {:>9} tasks  build {:>8.3}s  sim {:>8.3}s  {:>12.0} tasks/s",
            m.name,
            m.n_tasks,
            m.build_secs,
            m.sim_secs,
            m.tasks_per_sec()
        );
        json.push_str(&format!(
            concat!(
                "    {{\"name\": \"{}\", \"n_tasks\": {}, ",
                "\"build_secs\": {:.6}, \"sim_secs\": {:.6}, ",
                "\"tasks_per_sec\": {:.1}, \"makespan\": {:.6}}}{}\n"
            ),
            m.name,
            m.n_tasks,
            m.build_secs,
            m.sim_secs,
            m.tasks_per_sec(),
            m.makespan,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    write_result("BENCH_engine.json", &json);
}
