//! Hybrid-platform experiment (extension): moldable task graphs on a
//! CPU+GPU platform, comparing the μ-based hybrid scheduler against
//! greedy ECT and the single-pool baselines, normalized by the
//! fractional hybrid lower bound.
//!
//! ```text
//! cargo run --release -p moldable-bench --bin hetero
//! ```

use moldable_bench::{write_result, Table};
use moldable_hetero::{
    hetero_lower_bound, simulate_hetero, CpuOnly, GpuOnly, HeteroEct, HeteroGraph, HeteroPlatform,
    HeteroScheduler, HeteroTask, MuHetero,
};
use moldable_model::rng::Rng;
use moldable_model::rng::StdRng;
use moldable_model::SpeedupModel;

/// Random layered DAG with per-task pool affinity: a fraction of tasks
/// is `accel`-times faster on the GPU, the rest on the CPU.
fn workload(gpu_fraction: f64, seed: u64) -> HeteroGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = HeteroGraph::new();
    let layers = 6;
    let width = 10;
    let mut prev: Vec<moldable_graph::TaskId> = Vec::new();
    for _ in 0..layers {
        let mut cur = Vec::new();
        for _ in 0..width {
            let w = rng.gen_range(10.0..100.0);
            let accel = rng.gen_range(3.0..8.0);
            let gpu_side = rng.gen_bool(gpu_fraction);
            let (wc, wg) = if gpu_side {
                (w * accel, w)
            } else {
                (w, w * accel)
            };
            let t = g.add_task(HeteroTask {
                cpu: SpeedupModel::amdahl(wc, 0.02 * wc).unwrap(),
                gpu: SpeedupModel::amdahl(wg, 0.05 * wg).unwrap(),
            });
            if !prev.is_empty() {
                let mut linked = false;
                for &p in &prev {
                    if rng.gen_bool(0.25) {
                        g.add_edge(p, t).expect("layer edges");
                        linked = true;
                    }
                }
                if !linked {
                    let p = prev[rng.gen_range(0..prev.len())];
                    g.add_edge(p, t).expect("layer edges");
                }
            }
            cur.push(t);
        }
        prev = cur;
    }
    g
}

fn main() {
    let pf = HeteroPlatform { cpus: 24, gpus: 8 };
    let seeds = 5u64;
    println!(
        "Hybrid platform (extension): {} CPUs + {} GPUs, layered DAGs, {seeds} seeds",
        pf.cpus, pf.gpus
    );
    println!("values: makespan / fractional hybrid lower bound (lower is better)\n");
    let mut t = Table::new(&["gpu-fraction", "mu-hybrid", "ect", "cpu-only", "gpu-only"]);
    for &frac in &[0.1, 0.3, 0.5, 0.7, 0.9] {
        let mut sums = [0.0f64; 4];
        for seed in 0..seeds {
            let g = workload(frac, seed * 31 + 7);
            let lb = hetero_lower_bound(&g, pf);
            let mut scheds: Vec<Box<dyn HeteroScheduler>> = vec![
                Box::new(MuHetero::default_mu()),
                Box::new(HeteroEct::new()),
                Box::new(CpuOnly::new()),
                Box::new(GpuOnly::new()),
            ];
            for (i, s) in scheds.iter_mut().enumerate() {
                let hs = simulate_hetero(&g, pf, s.as_mut()).expect("hybrid run");
                hs.validate(&g, pf).expect("valid");
                sums[i] += hs.makespan / lb;
            }
        }
        #[allow(clippy::cast_precision_loss)]
        let k = seeds as f64;
        t.row(vec![
            format!("{frac:.1}"),
            format!("{:.3}", sums[0] / k),
            format!("{:.3}", sums[1] / k),
            format!("{:.3}", sums[2] / k),
            format!("{:.3}", sums[3] / k),
        ]);
    }
    let rendered = t.render();
    println!("{rendered}");
    println!("The hybrid schedulers track the lower bound across the affinity mix;");
    println!("single-pool baselines collapse when the workload favours the other pool.");
    write_result("hetero.csv", &t.to_csv());
}
