//! Regenerates **Table 1** of the paper: competitive-ratio upper and
//! lower bounds for the online algorithm under the four speedup models.
//!
//! * Upper bounds: numerical minimization of the Lemma 5 ratio over μ
//!   (exactly the computation in Theorems 1–4).
//! * Lower bounds: the closed forms of Theorems 5–8, plus a *measured*
//!   ratio from actually running the algorithm on each theorem's
//!   adversarial instance at the largest size that simulates quickly.
//!
//! ```text
//! cargo run --release -p moldable-bench --bin table1
//! ```

use moldable_adversary::{amdahl, communication, general, roofline, LowerBoundInstance};
use moldable_bench::{par_map, write_result, Table};

fn main() {
    let rows = moldable_analysis::table1();

    // Measured lower-bound ratios on the adversarial instances; the
    // four builds+runs are independent, so fan them out.
    type Build = (&'static str, fn() -> LowerBoundInstance);
    let cases: Vec<Build> = vec![
        ("roofline", || roofline::instance(100_000)),
        ("communication", || communication::instance(1001)),
        ("amdahl", || amdahl::instance(80)),
        ("general", || general::instance(80)),
    ];
    let measured = par_map(cases, |(name, build)| (name, build().run_online().1));

    let mut t = Table::new(&[
        "model",
        "paper UB",
        "repro UB",
        "mu*",
        "x*",
        "paper LB",
        "repro LB",
        "measured LB",
    ]);
    for (row, (mname, m)) in rows.iter().zip(measured) {
        assert_eq!(row.class.name(), mname);
        t.row(vec![
            row.class.name().to_string(),
            format!("{:.2}", row.paper.0),
            format!("{:.4}", row.upper.ratio),
            format!("{:.4}", row.upper.mu),
            format!("{:.4}", row.upper.x),
            format!("{:.2}", row.paper.1),
            format!("{:.4}", row.lower),
            format!("{m:.4}"),
        ]);
    }

    println!("Table 1 — competitive ratios of the online algorithm");
    println!("(measured LB: algorithm on the Thm 5-8 instances at P=1e5 / P=1001 / K=80 / K=80)");
    println!();
    let rendered = t.render();
    println!("{rendered}");
    println!("Notes:");
    println!("- repro UB minimizes (mu*alpha + 1 - 2mu)/(mu(1-mu)) over mu, per Theorems 1-4.");
    println!("- repro LB evaluates the closed forms of Theorems 5-8 at the class mu.");
    println!("- measured LB is finite-size, so it sits slightly below the asymptote;");
    println!("  see `lower_bounds` for the convergence sweep.");
    write_result("table1.txt", &rendered);
    write_result("table1.csv", &t.to_csv());
}
