//! Regenerates **Table 1** of the paper — side by side for every
//! registered algorithm: competitive-ratio upper and lower bounds for
//! the ICPP'22 online algorithm under the four speedup models, plus
//! the Improved'23 (arXiv 2304.14127) dual-allocation envelopes.
//!
//! * Upper bounds: numerical minimization of each algorithm's envelope
//!   over μ (Theorems 1–4 for ICPP'22; the dual envelopes for
//!   Improved'23).
//! * Lower bounds: the closed forms of Theorems 5–8, plus a *measured*
//!   ratio from actually running each algorithm on each theorem's
//!   adversarial instance at the largest size that simulates quickly.
//!
//! Every measured ratio is gated against its algorithm's proven
//! envelope — the binary panics (and CI fails) if an algorithm ever
//! exceeds its certificate.
//!
//! ```text
//! cargo run --release -p moldable-bench --bin table1
//! cargo run --release -p moldable-bench --bin table1 -- --algo improved23
//! ```
//!
//! With `--algo NAME` a single-algorithm table is written to
//! `table1_NAME.{txt,csv}` instead of the combined `table1.{txt,csv}`.

use moldable_adversary::{amdahl, communication, general, roofline, LowerBoundInstance};
use moldable_bench::{par_map, write_result, Table};
use moldable_core::registry::{by_name, ALGOS};
use moldable_core::AlgoName;
use moldable_model::ModelClass;

/// Measured ratio of every registered algorithm on one witness,
/// gated against each algorithm's proven envelope.
fn measure(class: ModelClass, inst: &LowerBoundInstance) -> Vec<(AlgoName, f64)> {
    ALGOS
        .into_iter()
        .map(|algo| {
            let (_, ratio) = inst.run_algo(algo, class);
            let envelope = algo.proven_upper_bound(class);
            assert!(
                ratio <= envelope,
                "{algo} measured ratio {ratio} exceeds its proven envelope {envelope} on {class}"
            );
            (algo, ratio)
        })
        .collect()
}

fn improved_bound(class: ModelClass) -> moldable_analysis::Bound {
    moldable_analysis::improved::upper_bound(class)
}

fn main() {
    let algo_arg = {
        // lint:allow(no-ambient-entropy) argv parsing for the bench binary's own --algo flag; never affects scheduling decisions
        let args: Vec<String> = std::env::args().skip(1).collect();
        match args.as_slice() {
            [] => None,
            [flag, name] if flag == "--algo" => {
                Some(by_name(name).unwrap_or_else(|e| panic!("{e}")))
            }
            other => panic!("usage: table1 [--algo NAME], got {other:?}"),
        }
    };

    let rows = moldable_analysis::table1();

    // Measured lower-bound ratios on the adversarial instances; the
    // four builds+runs are independent, so fan them out.
    type Build = (ModelClass, fn() -> LowerBoundInstance);
    let cases: Vec<Build> = vec![
        (ModelClass::Roofline, || roofline::instance(100_000)),
        (ModelClass::Communication, || communication::instance(1001)),
        (ModelClass::Amdahl, || amdahl::instance(80)),
        (ModelClass::General, || general::instance(80)),
    ];
    let measured = par_map(cases, |(class, build)| (class, measure(class, &build())));

    let per_algo = |m: &[(AlgoName, f64)], algo: AlgoName| {
        m.iter()
            .find(|(a, _)| *a == algo)
            .map(|(_, r)| *r)
            .expect("every algorithm was measured")
    };

    if let Some(algo) = algo_arg {
        // Single-algorithm artifact: table1_<name>.{txt,csv}.
        let mut t = Table::new(&["model", "UB", "mu*", "paper LB", "measured"]);
        for (row, (class, m)) in rows.iter().zip(&measured) {
            assert_eq!(row.class, *class);
            let (ub, mu) = match algo {
                AlgoName::Icpp22 => (row.upper.ratio, row.upper.mu),
                AlgoName::Improved23 => {
                    let b = improved_bound(*class);
                    (b.ratio, b.mu)
                }
            };
            t.row(vec![
                class.name().to_string(),
                format!("{ub:.4}"),
                format!("{mu:.4}"),
                format!("{:.2}", row.paper.1),
                format!("{:.4}", per_algo(m, algo)),
            ]);
        }
        println!("Table 1 — {algo} column");
        println!();
        let rendered = t.render();
        println!("{rendered}");
        write_result(&format!("table1_{algo}.txt"), &rendered);
        write_result(&format!("table1_{algo}.csv"), &t.to_csv());
        return;
    }

    let mut t = Table::new(&[
        "model",
        "paper UB",
        "icpp22 UB",
        "i23 UB",
        "mu*",
        "i23 mu*",
        "x*",
        "paper LB",
        "repro LB",
        "icpp22 measured",
        "i23 measured",
    ]);
    for (row, (class, m)) in rows.iter().zip(&measured) {
        assert_eq!(row.class, *class);
        let b23 = improved_bound(*class);
        t.row(vec![
            row.class.name().to_string(),
            format!("{:.2}", row.paper.0),
            format!("{:.4}", row.upper.ratio),
            format!("{:.4}", b23.ratio),
            format!("{:.4}", row.upper.mu),
            format!("{:.4}", b23.mu),
            format!("{:.4}", row.upper.x),
            format!("{:.2}", row.paper.1),
            format!("{:.4}", row.lower),
            format!("{:.4}", per_algo(m, AlgoName::Icpp22)),
            format!("{:.4}", per_algo(m, AlgoName::Improved23)),
        ]);
    }

    println!("Table 1 — competitive ratios, ICPP'22 vs Improved'23 side by side");
    println!("(measured: each algorithm on the Thm 5-8 instances at P=1e5 / P=1001 / K=80 / K=80)");
    println!();
    let rendered = t.render();
    println!("{rendered}");
    println!("Notes:");
    println!("- icpp22 UB minimizes (mu*alpha + 1 - 2mu)/(mu(1-mu)) over mu, per Theorems 1-4.");
    println!("- i23 UB minimizes the Improved'23 dual-allocation envelope (arXiv 2304.14127).");
    println!("- repro LB evaluates the closed forms of Theorems 5-8 at the class mu.");
    println!("- measured columns are finite-size, so they sit slightly below the asymptotes;");
    println!("  see `lower_bounds` for the convergence sweep.");
    write_result("table1.txt", &rendered);
    write_result("table1.csv", &t.to_csv());
}
