//! Regenerates **Figure 1**: the generic task graph used by the
//! lower-bound proofs (Theorems 6–8), as a Graphviz DOT file plus a
//! structural summary.
//!
//! ```text
//! cargo run --release -p moldable-bench --bin fig1
//! ```

use moldable_adversary::generic::GenericInstance;
use moldable_bench::write_result;
use moldable_model::SpeedupModel;

fn main() {
    // The paper draws the generic shape; sizes X, Y are symbolic there.
    // Use a small readable example (X = 3, Y = 4) for the figure...
    let unit = SpeedupModel::amdahl(1.0, 0.0).expect("valid task");
    let small = GenericInstance::build(3, 4, &unit, &unit, unit.clone());
    let dot = small.to_dot();
    write_result("fig1.dot", &dot);

    println!("Figure 1 — generic lower-bound task graph ((X+1)Y + 1 tasks)");
    println!();
    println!(
        "Rendered X = 3, Y = 4: {} tasks, {} edges, depth {}",
        small.n_tasks(),
        small.graph.n_edges(),
        small.graph.depth()
    );
    println!("{dot}");

    // ...and report the real sizes each theorem instantiates.
    println!("Instantiations used by the lower-bound theorems:");
    for p in [100u32, 1000] {
        let pr = moldable_adversary::communication::params(p);
        println!(
            "  Thm 6 (comm),   P = {p:>6}: X = {:>5}, Y = {:>5}  -> {} tasks",
            pr.x,
            pr.y,
            (pr.x + 1) * pr.y + 1
        );
    }
    for k in [10u32, 31] {
        let pr = moldable_adversary::amdahl::params(k);
        println!(
            "  Thm 7 (amdahl), K = {k:>6}: X = {:>5}, Y = {:>5}, p_B = {} -> {} tasks",
            pr.x,
            pr.y,
            pr.p_b,
            (pr.x + 1) * pr.y + 1
        );
    }
}
