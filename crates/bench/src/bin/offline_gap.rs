//! How close is the online algorithm to an *offline* scheduler that
//! knows the whole graph — the comparison the competitive ratio is
//! about, measured concretely:
//!
//! 1. on tiny instances, against the **exact optimum** (branch and
//!    bound) — the true competitive ratio;
//! 2. on full-size workflows, against the **CPA offline allocation**
//!    (knows the whole graph) — a practical offline yardstick;
//! 3. on independent task sets, against the **Turek dual bound** τ*.
//!
//! ```text
//! cargo run --release -p moldable-bench --bin offline_gap
//! ```

use moldable_bench::{write_result, Table, Workload};
use moldable_core::OnlineScheduler;
use moldable_graph::{GraphBuilder, TaskGraph};
use moldable_model::rng::Rng;
use moldable_model::rng::StdRng;
use moldable_model::sample::ParamDistribution;
use moldable_model::ModelClass;
use moldable_offline::{cpa, optimal_makespan, turek_schedule, BruteForceLimits};
use moldable_sim::{simulate, SimOptions};

fn online_makespan(g: &TaskGraph, class: ModelClass, p: u32) -> f64 {
    let mut s = OnlineScheduler::for_class(class);
    let sched = simulate(g, &mut s, &SimOptions::new(p)).expect("run");
    sched.validate(g).expect("valid");
    sched.makespan
}

fn tiny_vs_exact() -> Table {
    println!("1) online vs EXACT optimum (tiny random DAGs, true competitive ratio)");
    let mut t = Table::new(&["model", "instances", "mean T/OPT", "max T/OPT", "guarantee"]);
    for class in ModelClass::bounded_classes() {
        let mut ratios = Vec::new();
        let mut seed = 0u64;
        while ratios.len() < 40 {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed * 101 + class as u64);
            let p: u32 = rng.gen_range(2..=6);
            let n: usize = rng.gen_range(2..=6);
            let dist = ParamDistribution {
                w_min: 1.0,
                w_max: 15.0,
                d_frac: (0.0, 0.3),
                c_frac: (0.0, 0.2),
                pbar_range: (1, 6),
            };
            let mut g = GraphBuilder::new();
            let ids: Vec<_> = (0..n)
                .map(|_| g.add_task(dist.sample(class, p, &mut rng)))
                .collect();
            for i in 0..n {
                for j in (i + 1)..n {
                    if rng.gen_bool(0.3) {
                        g.add_edge(ids[i], ids[j]).expect("forward edge");
                    }
                }
            }
            let g = g.freeze();
            let Some(opt) = optimal_makespan(&g, p, BruteForceLimits::default()) else {
                continue;
            };
            ratios.push(online_makespan(&g, class, p) / opt);
        }
        #[allow(clippy::cast_precision_loss)]
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().copied().fold(0.0, f64::max);
        let guarantee = class.proven_upper_bound().expect("bounded");
        assert!(
            max <= guarantee + 1e-9,
            "competitive ratio exceeded vs TRUE optimum"
        );
        t.row(vec![
            class.name().to_string(),
            ratios.len().to_string(),
            format!("{mean:.3}"),
            format!("{max:.3}"),
            format!("{guarantee:.2}"),
        ]);
    }
    println!("{}", t.render());
    t
}

fn workflows_vs_cpa() -> Table {
    println!("2) online vs CPA offline allocation (full-size workflows, P = 64)");
    let p = 64;
    let mut t = Table::new(&["workload", "model", "online T", "CPA T", "online/CPA"]);
    for w in [
        Workload::Cholesky,
        Workload::Lu,
        Workload::Layered,
        Workload::Wavefront,
    ] {
        for class in ModelClass::bounded_classes() {
            let mut ratio_sum = 0.0;
            let mut on_sum = 0.0;
            let mut off_sum = 0.0;
            let seeds = 5u64;
            for seed in 0..seeds {
                let g = w.build(class, p, seed * 13 + 5);
                let on = online_makespan(&g, class, p);
                let off = cpa::cpa_schedule(&g, p).expect("cpa").makespan;
                ratio_sum += on / off;
                on_sum += on;
                off_sum += off;
            }
            #[allow(clippy::cast_precision_loss)]
            let k = seeds as f64;
            t.row(vec![
                w.name().to_string(),
                class.name().to_string(),
                format!("{:.1}", on_sum / k),
                format!("{:.1}", off_sum / k),
                format!("{:.3}", ratio_sum / k),
            ]);
        }
    }
    println!("{}", t.render());
    t
}

fn independent_vs_turek() -> Table {
    println!("3) online vs Turek dual bound tau* (independent tasks, P = 32)");
    let p = 32;
    let mut t = Table::new(&["model", "online/tau*", "turek/tau*"]);
    for class in [
        ModelClass::Roofline,
        ModelClass::Communication,
        ModelClass::Amdahl,
    ] {
        let mut on_r = 0.0;
        let mut tu_r = 0.0;
        let seeds = 8u64;
        for seed in 0..seeds {
            let g = Workload::Independent.build(class, p, seed * 7 + 3);
            let r = turek_schedule(&g, p);
            on_r += online_makespan(&g, class, p) / r.tau;
            tu_r += r.schedule.makespan / r.tau;
        }
        #[allow(clippy::cast_precision_loss)]
        let k = seeds as f64;
        t.row(vec![
            class.name().to_string(),
            format!("{:.3}", on_r / k),
            format!("{:.3}", tu_r / k),
        ]);
    }
    println!("{}", t.render());
    t
}

fn main() {
    println!("Offline gap: how much does clairvoyance buy?\n");
    let a = tiny_vs_exact();
    let b = workflows_vs_cpa();
    let c = independent_vs_turek();
    let mut out = a.to_csv();
    out.push('\n');
    out.push_str(&b.to_csv());
    out.push('\n');
    out.push_str(&c.to_csv());
    write_result("offline_gap.csv", &out);
}
