//! Regenerates **Figure 4**: on the ℓ = 2 instance of Figure 3,
//! (a) the offline schedule with makespan exactly 1, and (b) the
//! equal-share online schedule against the adaptive adversary, with its
//! decision points t₁ = 1/2, t₂ = 5/6, t₃ ≈ 1.07, t₄ ≈ 1.23.
//!
//! ```text
//! cargo run --release -p moldable-bench --bin fig4
//! ```

use moldable_adversary::arbitrary::{offline_schedule, params, AdaptiveChains};
use moldable_bench::{write_result, Table};
use moldable_core::baselines::EqualShareScheduler;
use moldable_sim::{gantt_ascii, simulate_instance, SimOptions};

fn main() {
    let l = 2;
    let pr = params(l);
    println!("Figure 4 — schedules for the l = 2 instance (K = 4, P = 32)\n");

    // ---- (a) offline schedule, makespan 1 ----
    let (graph, mut off) = offline_schedule(l);
    off.validate(&graph).expect("offline schedule is valid");
    off.assign_proc_ids().expect("offline schedule fits");
    println!(
        "(a) offline schedule: makespan = {} (paper: 1)",
        off.makespan
    );
    // Label by chain id (hex-ish single chars 1..9, a..f for 10..15).
    let chain_of_task = |idx: usize| -> usize {
        // chains are laid out consecutively: group 1 (8 chains of 1),
        // group 2 (4 of 2), group 3 (2 of 3), group 4 (1 of 4).
        let mut id = idx;
        let mut chain = 0;
        for (group, count) in [(1usize, 8usize), (2, 4), (3, 2), (4, 1)] {
            let tasks = group * count;
            if id < tasks {
                return chain + id / group;
            }
            id -= tasks;
            chain += count;
        }
        unreachable!("task index out of range")
    };
    let label = move |idx: usize| {
        char::from_digit((chain_of_task(idx) + 1) as u32, 16).expect("15 chains fit hex")
    };
    let g_off = gantt_ascii(&off, 96, label);
    println!("{g_off}");

    // ---- (b) equal-share online vs the adaptive adversary ----
    let mut adv = AdaptiveChains::new(l);
    let mut eq = EqualShareScheduler::new();
    let opts = SimOptions::new(pr.p_total).with_proc_ids();
    let s = simulate_instance(&mut adv, &mut eq, &opts).expect("online run");
    s.check_capacity(1e-9).expect("capacity respected");

    println!(
        "(b) equal-share online schedule: makespan = {:.4} (paper: ~1.23)",
        s.makespan
    );
    // Tasks are created in completion-driven order; label by position
    // (i-th task of any chain) to mirror the figure's bands.
    let g_on = gantt_ascii(&s, 96, |_| '#');
    println!("{g_on}");

    let mut t = Table::new(&["mark", "measured", "paper"]);
    let paper_vals = [0.5, 5.0 / 6.0, 1.0647, 1.2314];
    let marks = adv.t_marks();
    for i in 1..=3usize {
        t.row(vec![
            format!("t{i}"),
            format!("{:.4}", marks[i].expect("observed")),
            format!("{:.4}", paper_vals[i - 1]),
        ]);
    }
    t.row(vec![
        "t4 (makespan)".into(),
        format!("{:.4}", s.makespan),
        "1.2314".into(),
    ]);
    let rendered = t.render();
    println!("{rendered}");

    let mut out = format!("(a) offline, makespan {}\n{g_off}\n", off.makespan);
    out.push_str(&format!(
        "(b) equal-share online, makespan {:.4}\n{g_on}\n",
        s.makespan
    ));
    out.push_str(&rendered);
    write_result("fig4.txt", &out);
    write_result("fig4_marks.csv", &t.to_csv());
}
