//! Regenerates **Figure 2**: the *shape* of the online algorithm's
//! schedule versus the proof's near-optimal schedule on the generic
//! lower-bound graph (communication-model parameters, Theorem 6).
//!
//! The online algorithm is forced to serialize the layers (B-tasks,
//! then the A-task, layer after layer, with the top of the platform
//! idle); the alternative schedule runs the whole A-chain first and
//! then overlaps all B-tasks with task C.
//!
//! ```text
//! cargo run --release -p moldable-bench --bin fig2
//! ```

use moldable_adversary::communication;
use moldable_bench::write_result;
use moldable_core::OnlineScheduler;
use moldable_sim::{gantt_ascii, simulate, SimOptions};

fn main() {
    // Small platform so the Gantt is readable; shapes already show.
    let p_total = 24;
    let inst = communication::instance(p_total);
    let pr = communication::params(p_total);
    let n = inst.graph.n_tasks();

    // Label: B, A per layer; C last (ids are laid out layer by layer).
    let label = move |idx: usize| -> char {
        if idx == n - 1 {
            'C'
        } else if idx % (pr.x + 1) == pr.x {
            'A'
        } else {
            'B'
        }
    };

    println!("Figure 2 — schedule shapes on the Theorem 6 instance (P = {p_total})");
    println!("X = {}, Y = {}, {} tasks\n", pr.x, pr.y, n);

    // (a) our algorithm
    let mut sched = OnlineScheduler::with_mu(inst.mu);
    let opts = SimOptions::new(p_total).with_proc_ids();
    let s = simulate(&inst.graph, &mut sched, &opts).expect("online run");
    s.validate(&inst.graph).expect("valid schedule");
    let g_online = gantt_ascii(&s, 100, label);
    println!("(a) online algorithm: makespan = {:.3}", s.makespan);
    println!("{g_online}");

    // (b) the proof's alternative schedule
    let mut proof = inst.proof_schedule.clone().expect("proof schedule");
    proof
        .assign_proc_ids()
        .expect("proof schedule fits the platform");
    let g_proof = gantt_ascii(&proof, 100, label);
    println!(
        "(b) proof's offline schedule: makespan = {:.3}",
        proof.makespan
    );
    println!("{g_proof}");

    println!(
        "ratio on this small instance: {:.3} (asymptote: {:.3})",
        s.makespan / proof.makespan,
        communication::asymptotic_bound()
    );

    let mut out = String::new();
    out.push_str(&format!(
        "(a) online, makespan {:.4}\n{g_online}\n",
        s.makespan
    ));
    out.push_str(&format!(
        "(b) offline, makespan {:.4}\n{g_proof}\n",
        proof.makespan
    ));
    write_result("fig2.txt", &out);
    write_result("fig2_online.csv", &s.to_csv());
    write_result("fig2_offline.csv", &proof.to_csv());
}
