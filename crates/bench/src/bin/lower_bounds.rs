//! Convergence sweep for the algorithm lower bounds (Theorems 5–8):
//! the measured ratio of the online algorithm on each adversarial
//! instance, as the instance grows, against the proven asymptote.
//!
//! ```text
//! cargo run --release -p moldable-bench --bin lower_bounds
//! ```

use moldable_adversary::{amdahl, communication, general, roofline, LowerBoundInstance};
use moldable_bench::{par_map, write_result, Table};

fn sweep(
    name: &str,
    sizes: &[u32],
    size_label: &str,
    build: impl Fn(u32) -> LowerBoundInstance + Sync,
    asymptote: f64,
    upper: f64,
    table: &mut Table,
) {
    println!("{name}: asymptote {asymptote:.4}, Theorem UB {upper:.4}");
    // Build + simulate every size in parallel; print and accumulate in
    // input order afterwards, so the output stays byte-identical to the
    // sequential sweep.
    let rows = par_map(sizes.to_vec(), |s| {
        let inst = build(s);
        let (makespan, ratio) = inst.run_online();
        (s, inst.graph.n_tasks(), makespan, inst.t_opt_upper, ratio)
    });
    for (s, n_tasks, makespan, t_opt_upper, ratio) in rows {
        println!(
            "  {size_label} = {s:>6}: tasks = {n_tasks:>8}, T = {makespan:>12.2}, T_opt <= {t_opt_upper:>10.2}, ratio = {ratio:.4}",
        );
        assert!(
            ratio <= upper + 1e-9,
            "measured ratio exceeded the proven UB"
        );
        table.row(vec![
            name.to_string(),
            s.to_string(),
            format!("{ratio:.5}"),
            format!("{asymptote:.5}"),
            format!("{upper:.5}"),
        ]);
    }
    println!();
}

fn main() {
    println!("Lower-bound convergence (Theorems 5-8)\n");
    let mut t = Table::new(&["model", "size", "measured", "asymptote", "theorem_ub"]);

    sweep(
        "roofline (Thm 5)",
        &[16, 64, 256, 1024, 4096, 16384, 65536, 262_144],
        "P",
        roofline::instance,
        roofline::asymptotic_bound(),
        1.0 / moldable_model::ModelClass::Roofline.optimal_mu() + 1e-12,
        &mut t,
    );
    sweep(
        "communication (Thm 6)",
        &[11, 23, 47, 101, 211, 401, 801, 1601],
        "P",
        communication::instance,
        communication::asymptotic_bound(),
        communication::upper_bound(),
        &mut t,
    );
    sweep(
        "amdahl (Thm 7)",
        &[5, 8, 12, 20, 32, 48, 80, 120],
        "K",
        amdahl::instance,
        amdahl::asymptotic_bound(),
        amdahl::upper_bound(),
        &mut t,
    );
    sweep(
        "general (Thm 8)",
        // K = 5 degenerates (Y = 0) because delta ≈ 3.48 eats most of
        // one layer; start at 6.
        &[6, 8, 12, 20, 32, 48, 80, 120],
        "K",
        general::instance,
        general::asymptotic_bound(),
        general::upper_bound(),
        &mut t,
    );

    write_result("lower_bounds.csv", &t.to_csv());
    println!("{}", t.render());
}
