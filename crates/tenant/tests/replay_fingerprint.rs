//! Regression pin: the session event log is a pure function of the
//! workload.
//!
//! This is the invariant the `moldable-lint` pass exists to protect:
//! no wall clocks, no hash-order iteration, and no ambient entropy
//! anywhere between `submit_dag` and the event stream. The test
//! drives a fixed two-tenant workload through a fresh
//! [`TenantService`] twice, renders every polled event canonically,
//! and (a) demands the two logs be byte-identical, (b) pins the
//! FNV-1a fingerprint of the log to a constant, so any future change
//! that silently perturbs replay order fails loudly here.

use std::sync::Arc;

use moldable_core::AlgoName;
use moldable_graph::{gen, TaskGraph};
use moldable_model::SpeedupModel;
use moldable_tenant::{EventKind, TenantConfig, TenantService};

const ALGO: AlgoName = AlgoName::Icpp22;

/// FNV-1a over bytes — same construction the session loadgen uses for
/// its event-log fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn workload_graph(which: u32) -> Arc<TaskGraph> {
    let mut assign = |ctx: gen::TaskCtx<'_>| {
        // Distinct but fixed parameters per task and per DAG: enough
        // heterogeneity to exercise Algorithm 2, zero entropy.
        let w = 10.0 + f64::from(ctx.index as u32 % 7) + f64::from(which);
        SpeedupModel::amdahl(w, 1.0).unwrap()
    };
    Arc::new(match which % 2 {
        0 => gen::fork_join(4, 3, &mut assign),
        _ => gen::chain(6, &mut assign),
    })
}

/// Run the fixed workload on a fresh service, return the canonical
/// event-log rendering.
fn run_workload() -> String {
    let mut svc = TenantService::new(TenantConfig::new(32, 0.3));
    let sessions = [
        ("acme", "acme-s0"),
        ("acme", "acme-s1"),
        ("zeta", "zeta-s0"),
    ];
    for (tenant, label) in sessions {
        svc.open_session(tenant, label, 0).unwrap();
    }
    // Two submission rounds with staggered release dates.
    for round in 0..2u32 {
        for (i, (_, label)) in sessions.iter().enumerate() {
            let g = workload_graph(round * 3 + i as u32);
            let at = f64::from(round) * 5.0;
            svc.submit_dag(label, g, at, ALGO, 0).unwrap();
        }
    }
    // Close everything, then poll each session dry. Closing first
    // releases the session frontiers so the world can run to the end.
    for (_, label) in sessions {
        svc.close_session(label, 0).unwrap();
    }
    let mut log = String::new();
    for (_, label) in sessions {
        loop {
            let r = svc.poll(label, f64::INFINITY, 64, 0).unwrap();
            for e in &r.events {
                let line = match e.kind {
                    EventKind::TaskDone { task, end, procs } => format!(
                        "{label} seq={} dag={} task={task} end={:016x} procs={procs}\n",
                        e.seq,
                        e.dag,
                        end.to_bits()
                    ),
                    EventKind::DagDone { at } => format!(
                        "{label} seq={} dag={} done at={:016x}\n",
                        e.seq,
                        e.dag,
                        at.to_bits()
                    ),
                };
                log.push_str(&line);
            }
            if r.closed {
                break;
            }
            assert!(
                !r.events.is_empty() || r.pending_events > 0 || r.closed,
                "poll made no progress on {label}"
            );
        }
    }
    // Ledgers balance at quiescence: 6 submissions, all ok.
    for (name, ledger) in svc.ledgers() {
        assert_eq!(ledger.submitted, ledger.ok, "tenant {name} unbalanced");
        assert_eq!(ledger.errors + ledger.drops, 0, "tenant {name} rejected");
    }
    log
}

#[test]
fn event_log_replays_byte_identically_and_fingerprint_is_pinned() {
    let first = run_workload();
    let second = run_workload();
    assert_eq!(first, second, "fresh services must replay identically");
    assert!(
        first.lines().count() >= 6 * 2,
        "expected task + dag-done events for six DAGs, got:\n{first}"
    );
    // The pinned fingerprint. If a change moves this value, it changed
    // the replay-visible event order or timing — that is a determinism
    // contract change and must be deliberate (re-pin with the new
    // value only after explaining why in the PR).
    assert_eq!(
        fnv1a(first.as_bytes()),
        0x5fed_ff95_eb6e_7ad5,
        "replay fingerprint moved; event log:\n{first}"
    );
}
