//! The shared-platform instance: many DAGs, one processor pool.
//!
//! [`WorldInstance`] implements [`moldable_sim::Instance`] over a
//! *growing* population of task graphs. Each admitted DAG gets a dense
//! block of global task ids (`base .. base + n_tasks`), a private
//! [`Frontier`], and a release date; the instance melds them into one
//! arrival stream for the engine: a DAG "arrives" by releasing its
//! sources at its release date, and completions propagate through its
//! own frontier only.
//!
//! Arrival determinism: pending DAGs are ordered by `(release date,
//! submission sequence)` — the exact tie-break [`TimedArrivals`] gets
//! from its stable sort — so two DAGs submitted for the same instant
//! release in admission order, bit-identically on every run.
//!
//! [`TimedArrivals`]: moldable_sim::TimedArrivals

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;

use moldable_graph::{Frontier, TaskGraph, TaskId};
use moldable_model::SpeedupModel;
use moldable_sim::Instance;

/// Index of a DAG within a [`WorldInstance`], in admission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DagIdx(pub u32);

/// Admission failure: the global task-id space is exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdSpaceExhausted {
    /// Tasks already registered.
    pub used: u64,
    /// Tasks the rejected DAG would have added.
    pub requested: u64,
}

impl fmt::Display for IdSpaceExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "world task-id space exhausted: {} tasks registered, {} more requested, limit {}",
            self.used,
            self.requested,
            u32::MAX
        )
    }
}

impl std::error::Error for IdSpaceExhausted {}

struct DagSlot {
    graph: Arc<TaskGraph>,
    base: u32,
    frontier: Frontier,
    n_done: u32,
    release_date: f64,
}

/// A pending DAG arrival, min-ordered by `(date, submission seq)`.
struct Pending {
    at: f64,
    seq: u64,
    dag: u32,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.total_cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// A multi-DAG instance sharing one simulated platform.
#[derive(Default)]
pub struct WorldInstance {
    dags: Vec<DagSlot>,
    /// Global task id → owning DAG (parallel growth with id blocks).
    task_dag: Vec<u32>,
    pending: BinaryHeap<Reverse<Pending>>,
    next_seq: u64,
    n_tasks: u64,
    completed: u64,
}

impl WorldInstance {
    /// An empty world: no DAGs, zero tasks, trivially done.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Admit `graph` with release date `at`, assigning it the next
    /// block of global task ids. Callers enforce monotonicity of `at`
    /// against the engine clock; the world only orders arrivals.
    ///
    /// # Errors
    ///
    /// [`IdSpaceExhausted`] when the block would overflow `u32` ids.
    ///
    /// # Panics
    ///
    /// Panics if `at` is negative or non-finite (the contract of
    /// release dates throughout the simulator).
    pub fn submit(&mut self, graph: Arc<TaskGraph>, at: f64) -> Result<DagIdx, IdSpaceExhausted> {
        assert!(
            at.is_finite() && at >= 0.0,
            "release dates must be finite and >= 0"
        );
        let n = graph.n_tasks() as u64;
        if self.n_tasks + n > u64::from(u32::MAX) {
            return Err(IdSpaceExhausted {
                used: self.n_tasks,
                requested: n,
            });
        }
        #[allow(clippy::cast_possible_truncation)]
        let base = self.n_tasks as u32;
        let dag = u32::try_from(self.dags.len()).expect("dag count within task count");
        let frontier = Frontier::new(&graph);
        self.task_dag
            .resize(self.task_dag.len() + graph.n_tasks(), dag);
        self.dags.push(DagSlot {
            graph,
            base,
            frontier,
            n_done: 0,
            release_date: at,
        });
        self.n_tasks += n;
        self.pending.push(Reverse(Pending {
            at,
            seq: self.next_seq,
            dag,
        }));
        self.next_seq += 1;
        Ok(DagIdx(dag))
    }

    /// Number of admitted DAGs.
    #[must_use]
    pub fn n_dags(&self) -> usize {
        self.dags.len()
    }

    /// Total tasks registered across all DAGs.
    #[must_use]
    pub fn n_tasks(&self) -> u64 {
        self.n_tasks
    }

    /// Tasks completed across all DAGs.
    #[must_use]
    pub fn n_completed(&self) -> u64 {
        self.completed
    }

    /// The DAG owning a global task id, plus the task's id local to
    /// that DAG.
    #[must_use]
    pub fn locate(&self, task: TaskId) -> (DagIdx, TaskId) {
        let dag = self.task_dag[task.index()];
        let base = self.dags[dag as usize].base;
        (DagIdx(dag), TaskId(task.0 - base))
    }

    /// Has this DAG fully completed?
    #[must_use]
    pub fn dag_done(&self, dag: DagIdx) -> bool {
        self.dags[dag.0 as usize].frontier.all_done()
    }

    /// Tasks in this DAG.
    #[must_use]
    pub fn dag_tasks(&self, dag: DagIdx) -> usize {
        self.dags[dag.0 as usize].graph.n_tasks()
    }

    /// The DAG's release date.
    #[must_use]
    pub fn dag_release_date(&self, dag: DagIdx) -> f64 {
        self.dags[dag.0 as usize].release_date
    }

    fn globalize(slot: &DagSlot, locals: &[TaskId]) -> Vec<TaskId> {
        locals.iter().map(|t| TaskId(slot.base + t.0)).collect()
    }
}

impl Instance for WorldInstance {
    fn initial(&mut self) -> Vec<TaskId> {
        // Everything — including date-0 DAGs — arrives through the
        // timed-arrival path, exactly like `TimedArrivals`.
        Vec::new()
    }

    fn on_complete(&mut self, task: TaskId, _time: f64) -> Vec<TaskId> {
        let dag = self.task_dag[task.index()] as usize;
        let slot = &mut self.dags[dag];
        let local = TaskId(task.0 - slot.base);
        let newly = slot.frontier.complete(&slot.graph, local);
        slot.n_done += 1;
        self.completed += 1;
        Self::globalize(slot, &newly)
    }

    fn is_done(&self) -> bool {
        self.completed == self.n_tasks && self.pending.is_empty()
    }

    fn model(&self, task: TaskId) -> &SpeedupModel {
        let dag = self.task_dag[task.index()] as usize;
        let slot = &self.dags[dag];
        slot.graph.model(TaskId(task.0 - slot.base))
    }

    fn size_hint(&self) -> usize {
        usize::try_from(self.n_tasks).unwrap_or(usize::MAX)
    }

    fn next_arrival(&self) -> Option<f64> {
        self.pending.peek().map(|Reverse(p)| p.at)
    }

    fn arrivals(&mut self, time: f64) -> Vec<TaskId> {
        let mut out = Vec::new();
        while let Some(Reverse(p)) = self.pending.peek() {
            if p.at > time {
                break;
            }
            let dag = self.pending.pop().expect("peeked").0.dag as usize;
            let slot = &self.dags[dag];
            // A DAG arrives by releasing its sources, in id order —
            // the same order `GraphInstance::initial` would use.
            out.extend(slot.graph.sources().iter().map(|t| TaskId(slot.base + t.0)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moldable_graph::GraphBuilder;

    fn unit(w: f64) -> SpeedupModel {
        SpeedupModel::amdahl(w, 0.0).unwrap()
    }

    fn chain(ws: &[f64]) -> Arc<TaskGraph> {
        let mut b = GraphBuilder::new();
        let ids: Vec<TaskId> = ws.iter().map(|&w| b.add_task(unit(w))).collect();
        for pair in ids.windows(2) {
            b.add_edge(pair[0], pair[1]).unwrap();
        }
        Arc::new(b.freeze())
    }

    #[test]
    fn ids_are_blocked_per_dag_and_locatable() {
        let mut w = WorldInstance::new();
        let d0 = w.submit(chain(&[1.0, 2.0]), 0.0).unwrap();
        let d1 = w.submit(chain(&[3.0]), 1.0).unwrap();
        assert_eq!((d0, d1), (DagIdx(0), DagIdx(1)));
        assert_eq!(w.n_tasks(), 3);
        assert_eq!(w.locate(TaskId(0)), (DagIdx(0), TaskId(0)));
        assert_eq!(w.locate(TaskId(1)), (DagIdx(0), TaskId(1)));
        assert_eq!(w.locate(TaskId(2)), (DagIdx(1), TaskId(0)));
        assert_eq!(w.model(TaskId(2)).time(1), 3.0);
    }

    #[test]
    fn arrivals_release_sources_in_date_then_submission_order() {
        let mut w = WorldInstance::new();
        // Submitted out of date order; ties broken by submission.
        let _a = w.submit(chain(&[1.0]), 5.0).unwrap();
        let _b = w.submit(chain(&[1.0, 1.0]), 0.0).unwrap();
        let _c = w.submit(chain(&[1.0]), 5.0).unwrap();
        assert_eq!(w.next_arrival(), Some(0.0));
        assert_eq!(w.arrivals(0.0), vec![TaskId(1)]);
        assert_eq!(w.next_arrival(), Some(5.0));
        // Both date-5 DAGs in one batch, submission order a then c.
        assert_eq!(w.arrivals(5.0), vec![TaskId(0), TaskId(3)]);
        assert_eq!(w.next_arrival(), None);
    }

    #[test]
    fn completions_propagate_within_one_dag_only() {
        let mut w = WorldInstance::new();
        let d0 = w.submit(chain(&[1.0, 2.0]), 0.0).unwrap();
        let _d1 = w.submit(chain(&[1.0, 1.0]), 0.0).unwrap();
        let _ = w.arrivals(0.0);
        let newly = w.on_complete(TaskId(0), 1.0);
        assert_eq!(newly, vec![TaskId(1)], "successor inside dag 0 only");
        assert!(!w.dag_done(d0));
        let _ = w.on_complete(TaskId(1), 3.0);
        assert!(w.dag_done(d0));
        assert!(!w.is_done());
    }

    #[test]
    fn empty_world_is_done_and_work_arrives_later() {
        let mut w = WorldInstance::new();
        assert!(w.is_done());
        assert_eq!(w.next_arrival(), None);
        let _ = w.submit(chain(&[1.0]), 2.0).unwrap();
        assert!(!w.is_done());
        assert_eq!(w.next_arrival(), Some(2.0));
    }

    #[test]
    fn id_space_overflow_is_a_structured_error() {
        let mut w = WorldInstance::new();
        w.n_tasks = u64::from(u32::MAX) - 1; // simulate a full world
        let err = w.submit(chain(&[1.0, 1.0]), 0.0).unwrap_err();
        assert_eq!(err.requested, 2);
        assert!(err.to_string().contains("task-id space exhausted"));
    }
}
