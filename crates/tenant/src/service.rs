//! Session lifecycle, admission control, and accounting.
//!
//! [`TenantService`] is the front door of the session layer: clients
//! open named sessions under a tenant, stream DAG submissions with
//! release dates, poll for incremental completions, and close. All
//! sessions share one simulated platform — a [`Stepper`] over a
//! [`WorldInstance`] scheduled by [`DrrScheduler`] — so tenants
//! genuinely contend for the same `P` processors.
//!
//! # Conservative time synchronization
//!
//! Virtual time only moves when *every* open session has promised not
//! to submit work earlier. Each session carries a **frontier**: its
//! promise that all future submissions satisfy `at >= frontier`
//! (submissions bump it to their own date; [`TenantService::poll`]'s
//! `until` bumps it explicitly; a fresh session starts at the current
//! world time). The world advances *strictly below* the minimum
//! frontier across open sessions — the null-message rule of
//! conservative parallel discrete-event simulation — so every
//! decision point sees all arrivals for its instant, no matter how
//! client requests interleave in wall time. The event log is
//! therefore a pure function of the submitted workload: same
//! sessions, same DAGs, same dates ⇒ byte-identical events, in the
//! same global order.
//!
//! # Session state machine
//!
//! `Open → Draining → Drained`. [`TenantService::close_session`] (or
//! an idle reap via [`TenantService::tick`]) moves a session to
//! Draining: it stops constraining the clock and rejects submissions,
//! but its in-flight DAGs keep running and their completion events
//! keep buffering. When the last DAG finishes, the session is
//! Drained; polls then report `closed` once the buffer empties. The
//! label stays reserved for the service's lifetime, so late polls
//! never alias a stranger's session.
//!
//! # Accounting
//!
//! Every `submit_dag` attempt that names a session of tenant `T`
//! increments `T`'s `submitted` counter and exactly one of: `ok`
//! (admitted, counted at DAG completion), `errors` (structural
//! rejections — closed session, non-monotone date, empty DAG, id
//! space), or `drops` (quota rejections). At quiescence the ledger
//! balances: `submitted == ok + errors + drops`.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use moldable_core::AlgoName;
use moldable_graph::TaskGraph;
use moldable_sim::{SimError, SimOptions, Stepper};

use crate::drr::DrrScheduler;
use crate::world::{DagIdx, IdSpaceExhausted, WorldInstance};

/// Per-tenant admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuotas {
    /// Concurrently open sessions per tenant.
    pub max_sessions: u32,
    /// In-flight (admitted, not yet completed) DAGs per tenant.
    pub max_dags_in_flight: u32,
    /// In-flight tasks per tenant, summed over its DAGs.
    pub max_tasks_in_flight: u64,
}

impl Default for TenantQuotas {
    fn default() -> Self {
        Self {
            max_sessions: 64,
            max_dags_in_flight: 256,
            max_tasks_in_flight: 1_000_000,
        }
    }
}

/// Service configuration: the shared platform and the quota policy.
#[derive(Debug, Clone, Copy)]
pub struct TenantConfig {
    /// Processors of the shared platform.
    pub p_total: u32,
    /// Algorithm 1's allocation parameter for all sessions.
    pub mu: f64,
    /// Per-tenant admission limits.
    pub quotas: TenantQuotas,
    /// Reap sessions idle longer than this (wall-clock ms); `None`
    /// disables reaping.
    pub idle_timeout_ms: Option<u64>,
}

impl TenantConfig {
    /// A config with default quotas and no idle reaping.
    #[must_use]
    pub fn new(p_total: u32, mu: f64) -> Self {
        Self {
            p_total,
            mu,
            quotas: TenantQuotas::default(),
            idle_timeout_ms: None,
        }
    }
}

/// Session lifecycle state (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Accepting submissions; constrains the world clock.
    Open,
    /// Closed to submissions; in-flight DAGs still running.
    Draining,
    /// All DAGs done; only residual events remain.
    Drained,
}

/// What happened, attached to a session's event stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A task of this session's DAG `dag` completed.
    TaskDone {
        /// Task id local to the DAG.
        task: u32,
        /// Completion time (virtual).
        end: f64,
        /// Processors it held.
        procs: u32,
    },
    /// All tasks of DAG `dag` completed.
    DagDone {
        /// Completion time of the DAG's last task.
        at: f64,
    },
}

/// One buffered completion event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionEvent {
    /// Global materialization sequence — totally ordered across all
    /// sessions; merging per-session streams by `seq` reproduces the
    /// deterministic world order.
    pub seq: u64,
    /// DAG index *within the session* (admission order).
    pub dag: u32,
    /// The event.
    pub kind: EventKind,
}

/// Per-tenant accounting. `submitted == ok + errors + drops` holds at
/// quiescence (no in-flight DAGs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ledger {
    /// `submit_dag` attempts that named a session of this tenant.
    pub submitted: u64,
    /// DAGs that ran to completion.
    pub ok: u64,
    /// Structural rejections (closed session, bad date, empty DAG…).
    pub errors: u64,
    /// Quota rejections.
    pub drops: u64,
}

/// Session-layer failures.
#[derive(Debug, Clone, PartialEq)]
pub enum TenantError {
    /// No session with this label.
    UnknownSession(String),
    /// The label is already taken (labels stay reserved after close).
    DuplicateSession(String),
    /// The session no longer accepts submissions.
    SessionClosed(String),
    /// Submission date below the session's frontier.
    NonMonotonicSubmit {
        /// The offending date.
        at: f64,
        /// The session's current frontier.
        frontier: f64,
    },
    /// A per-tenant quota would be exceeded.
    QuotaExceeded {
        /// Which quota: `"sessions"`, `"dags"`, or `"tasks"`.
        scope: &'static str,
        /// Current usage.
        used: u64,
        /// The configured limit.
        limit: u64,
    },
    /// The DAG has no tasks.
    EmptyDag,
    /// A non-finite or negative release date.
    BadReleaseDate(f64),
    /// The global task-id space is exhausted.
    IdSpace(IdSpaceExhausted),
    /// The shared platform hit an engine error and is poisoned.
    Wedged(SimError),
}

impl TenantError {
    /// Is this a quota rejection (for the wire's `quota_exceeded`)?
    #[must_use]
    pub fn is_quota(&self) -> bool {
        matches!(self, Self::QuotaExceeded { .. })
    }
}

impl fmt::Display for TenantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownSession(l) => write!(f, "unknown session `{l}`"),
            Self::DuplicateSession(l) => write!(f, "session `{l}` already exists"),
            Self::SessionClosed(l) => write!(f, "session `{l}` is closed to submissions"),
            Self::NonMonotonicSubmit { at, frontier } => write!(
                f,
                "submission at {at} is before the session frontier {frontier}"
            ),
            Self::QuotaExceeded { scope, used, limit } => {
                write!(f, "tenant quota exceeded: {used}/{limit} {scope}")
            }
            Self::EmptyDag => write!(f, "submitted DAG has no tasks"),
            Self::BadReleaseDate(at) => {
                write!(f, "release date {at} must be finite and >= 0")
            }
            Self::IdSpace(e) => write!(f, "{e}"),
            Self::Wedged(e) => write!(f, "shared platform wedged: {e}"),
        }
    }
}

impl std::error::Error for TenantError {}

/// Reply to [`TenantService::open_session`].
#[derive(Debug, Clone, Copy)]
pub struct OpenReply {
    /// World virtual time at open — also the session's initial
    /// frontier: first submissions must be at or after it.
    pub now: f64,
    /// The quota policy the session runs under.
    pub quotas: TenantQuotas,
}

/// Reply to [`TenantService::submit_dag`].
#[derive(Debug, Clone, Copy)]
pub struct SubmitReply {
    /// The DAG's index within the session (admission order) — the
    /// `dag` field of its future events.
    pub dag: u32,
    /// Tasks in the DAG.
    pub n_tasks: u32,
}

/// Reply to [`TenantService::poll`].
#[derive(Debug, Clone)]
pub struct PollReply {
    /// Drained events, oldest first.
    pub events: Vec<SessionEvent>,
    /// World virtual time after the poll's pump.
    pub now: f64,
    /// Events still buffered after this reply.
    pub pending_events: usize,
    /// The session is Drained and its buffer is empty: nothing more
    /// will ever arrive.
    pub closed: bool,
}

/// Reply to [`TenantService::close_session`].
#[derive(Debug, Clone, Copy)]
pub struct CloseReply {
    /// DAGs the session admitted over its lifetime.
    pub dags_admitted: u32,
    /// DAGs still running at close (drain continues in background).
    pub dags_in_flight: u32,
    /// Events buffered and not yet polled.
    pub pending_events: usize,
}

/// A point-in-time summary for stats endpoints.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceSummary {
    /// Sessions in [`SessionState::Open`].
    pub sessions_open: usize,
    /// Sessions in [`SessionState::Draining`].
    pub sessions_draining: usize,
    /// Sessions in [`SessionState::Drained`].
    pub sessions_drained: usize,
    /// Distinct tenants seen.
    pub tenants: usize,
    /// World virtual time.
    pub now: f64,
    /// Tasks completed on the shared platform.
    pub tasks_completed: u64,
    /// Events buffered across all sessions.
    pub events_pending: usize,
    /// Sessions reaped by the idle timeout so far.
    pub sessions_reaped: u64,
}

struct Session {
    label: String,
    tenant: usize,
    state: SessionState,
    frontier: f64,
    /// World DAG index per session-local DAG number.
    dags: Vec<DagIdx>,
    dags_done: u32,
    events: VecDeque<SessionEvent>,
    last_activity_ms: u64,
}

struct Tenant {
    name: String,
    sessions_open: u32,
    dags_in_flight: u32,
    tasks_in_flight: u64,
    ledger: Ledger,
}

struct DagOwner {
    session: u32,
    local_no: u32,
    n_tasks: u32,
    /// Tasks turned into events so far. Materialization runs after a
    /// whole advance, when the live frontier may already show the DAG
    /// finished — the DagDone event must fire exactly once, on the
    /// *last materialized* task, so doneness is counted here.
    n_materialized: u32,
}

/// The multi-tenant session service over one shared platform.
pub struct TenantService {
    cfg: TenantConfig,
    stepper: Stepper<WorldInstance, DrrScheduler>,
    sessions: Vec<Session>,
    by_label: HashMap<String, u32>,
    tenants: Vec<Tenant>,
    by_tenant: HashMap<String, u32>,
    /// World DAG index → owning session and session-local number.
    dag_owner: Vec<DagOwner>,
    next_event_seq: u64,
    scratch: Vec<usize>,
    sessions_reaped: u64,
}

impl TenantService {
    /// A fresh service: empty world, no sessions.
    #[must_use]
    pub fn new(cfg: TenantConfig) -> Self {
        let opts = SimOptions::new(cfg.p_total);
        let scheduler = DrrScheduler::new(cfg.p_total, cfg.mu);
        Self {
            cfg,
            stepper: Stepper::new(WorldInstance::new(), scheduler, &opts),
            sessions: Vec::new(),
            by_label: HashMap::new(),
            tenants: Vec::new(),
            by_tenant: HashMap::new(),
            dag_owner: Vec::new(),
            next_event_seq: 0,
            scratch: Vec::new(),
            sessions_reaped: 0,
        }
    }

    /// World virtual time.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.stepper.now()
    }

    /// The configuration the service runs under.
    #[must_use]
    pub fn config(&self) -> &TenantConfig {
        &self.cfg
    }

    /// The ledger of `tenant`, if it has been seen.
    #[must_use]
    pub fn ledger(&self, tenant: &str) -> Option<Ledger> {
        self.by_tenant
            .get(tenant)
            .map(|&i| self.tenants[i as usize].ledger)
    }

    /// All tenants with their ledgers, in first-seen order.
    pub fn ledgers(&self) -> impl Iterator<Item = (&str, Ledger)> {
        self.tenants.iter().map(|t| (t.name.as_str(), t.ledger))
    }

    /// Point-in-time summary for stats endpoints.
    #[must_use]
    pub fn summary(&self) -> ServiceSummary {
        let mut s = ServiceSummary {
            tenants: self.tenants.len(),
            now: self.stepper.now(),
            tasks_completed: self.stepper.instance().n_completed(),
            sessions_reaped: self.sessions_reaped,
            ..ServiceSummary::default()
        };
        for sess in &self.sessions {
            match sess.state {
                SessionState::Open => s.sessions_open += 1,
                SessionState::Draining => s.sessions_draining += 1,
                SessionState::Drained => s.sessions_drained += 1,
            }
            s.events_pending += sess.events.len();
        }
        s
    }

    /// Open a session named `label` under `tenant`. `now_ms` is the
    /// caller's wall clock, used only for idle accounting.
    ///
    /// # Errors
    ///
    /// [`TenantError::DuplicateSession`] if the label is taken,
    /// [`TenantError::QuotaExceeded`] over the session quota.
    pub fn open_session(
        &mut self,
        tenant: &str,
        label: &str,
        now_ms: u64,
    ) -> Result<OpenReply, TenantError> {
        if self.by_label.contains_key(label) {
            return Err(TenantError::DuplicateSession(label.to_string()));
        }
        let t = self.tenant_slot(tenant);
        let quotas = self.cfg.quotas;
        {
            let tn = &self.tenants[t];
            if tn.sessions_open >= quotas.max_sessions {
                return Err(TenantError::QuotaExceeded {
                    scope: "sessions",
                    used: u64::from(tn.sessions_open),
                    limit: u64::from(quotas.max_sessions),
                });
            }
        }
        let slot = u32::try_from(self.sessions.len()).expect("session count fits u32");
        // A fresh session may submit no earlier than the world has
        // already advanced; its frontier starts there and pins the
        // clock until the session moves it or closes.
        let now = self.stepper.now();
        self.sessions.push(Session {
            label: label.to_string(),
            tenant: t,
            state: SessionState::Open,
            frontier: now,
            dags: Vec::new(),
            dags_done: 0,
            events: VecDeque::new(),
            last_activity_ms: now_ms,
        });
        self.by_label.insert(label.to_string(), slot);
        self.tenants[t].sessions_open += 1;
        Ok(OpenReply { now, quotas })
    }

    /// Submit `graph` to session `label` with release date `at`
    /// (virtual time, `>=` the session frontier), allocating with
    /// registry algorithm `algo`. DAGs of different algorithms share
    /// the platform; each task allocates through its own DAG's
    /// algorithm.
    ///
    /// # Errors
    ///
    /// See [`TenantError`]; quota rejections count as ledger drops,
    /// other rejections as ledger errors.
    pub fn submit_dag(
        &mut self,
        label: &str,
        graph: Arc<TaskGraph>,
        at: f64,
        algo: AlgoName,
        now_ms: u64,
    ) -> Result<SubmitReply, TenantError> {
        let slot = *self
            .by_label
            .get(label)
            .ok_or_else(|| TenantError::UnknownSession(label.to_string()))?
            as usize;
        let tenant = self.sessions[slot].tenant;
        self.tenants[tenant].ledger.submitted += 1;
        match self.try_admit(slot, graph, at, algo, now_ms) {
            Ok(reply) => Ok(reply),
            Err(e) => {
                if e.is_quota() {
                    self.tenants[tenant].ledger.drops += 1;
                } else {
                    self.tenants[tenant].ledger.errors += 1;
                }
                Err(e)
            }
        }
    }

    fn try_admit(
        &mut self,
        slot: usize,
        graph: Arc<TaskGraph>,
        at: f64,
        algo: AlgoName,
        now_ms: u64,
    ) -> Result<SubmitReply, TenantError> {
        let n_tasks = graph.n_tasks();
        if n_tasks == 0 {
            return Err(TenantError::EmptyDag);
        }
        if !(at.is_finite() && at >= 0.0) {
            return Err(TenantError::BadReleaseDate(at));
        }
        let (tenant, frontier, state) = {
            let s = &self.sessions[slot];
            (s.tenant, s.frontier, s.state)
        };
        if state != SessionState::Open {
            return Err(TenantError::SessionClosed(
                self.sessions[slot].label.clone(),
            ));
        }
        if at < frontier {
            return Err(TenantError::NonMonotonicSubmit { at, frontier });
        }
        let q = self.cfg.quotas;
        let tn = &self.tenants[tenant];
        if tn.dags_in_flight >= q.max_dags_in_flight {
            return Err(TenantError::QuotaExceeded {
                scope: "dags",
                used: u64::from(tn.dags_in_flight),
                limit: u64::from(q.max_dags_in_flight),
            });
        }
        if tn.tasks_in_flight + n_tasks as u64 > q.max_tasks_in_flight {
            return Err(TenantError::QuotaExceeded {
                scope: "tasks",
                used: tn.tasks_in_flight,
                limit: q.max_tasks_in_flight,
            });
        }

        let dag = self
            .stepper
            .instance_mut()
            .submit(graph, at)
            .map_err(TenantError::IdSpace)?;
        self.stepper
            .scheduler_mut()
            .register_tasks(slot, n_tasks, algo);
        debug_assert_eq!(dag.0 as usize, self.dag_owner.len());
        let local_no = u32::try_from(self.sessions[slot].dags.len()).expect("dag count fits u32");
        self.dag_owner.push(DagOwner {
            session: u32::try_from(slot).expect("slot fits u32"),
            local_no,
            n_tasks: u32::try_from(n_tasks).expect("checked against u32 id space"),
            n_materialized: 0,
        });
        let s = &mut self.sessions[slot];
        s.dags.push(dag);
        s.frontier = at;
        s.last_activity_ms = now_ms;
        let tn = &mut self.tenants[tenant];
        tn.dags_in_flight += 1;
        tn.tasks_in_flight += n_tasks as u64;
        Ok(SubmitReply {
            dag: local_no,
            n_tasks: u32::try_from(n_tasks).expect("checked against u32 id space"),
        })
    }

    /// Poll session `label`: promise no submissions before `until`
    /// (bumping the session frontier), advance the shared world as far
    /// as every open session allows, and drain up to `max_events`
    /// buffered events.
    ///
    /// # Errors
    ///
    /// [`TenantError::UnknownSession`], or [`TenantError::Wedged`] if
    /// the platform hit an engine error.
    pub fn poll(
        &mut self,
        label: &str,
        until: f64,
        max_events: usize,
        now_ms: u64,
    ) -> Result<PollReply, TenantError> {
        let slot = *self
            .by_label
            .get(label)
            .ok_or_else(|| TenantError::UnknownSession(label.to_string()))?
            as usize;
        {
            let s = &mut self.sessions[slot];
            s.last_activity_ms = now_ms;
            if s.state == SessionState::Open && until.is_finite() && until > s.frontier {
                s.frontier = until;
            }
        }
        self.pump()?;
        let s = &mut self.sessions[slot];
        let take = max_events.min(s.events.len());
        let events: Vec<SessionEvent> = s.events.drain(..take).collect();
        Ok(PollReply {
            events,
            now: self.stepper.now(),
            pending_events: self.sessions[slot].events.len(),
            closed: self.sessions[slot].state == SessionState::Drained
                && self.sessions[slot].events.is_empty(),
        })
    }

    /// Close session `label`: no further submissions; in-flight DAGs
    /// drain in the background and their events stay pollable.
    /// Idempotent on already-closed sessions.
    ///
    /// # Errors
    ///
    /// [`TenantError::UnknownSession`], or [`TenantError::Wedged`].
    pub fn close_session(&mut self, label: &str, now_ms: u64) -> Result<CloseReply, TenantError> {
        let slot = *self
            .by_label
            .get(label)
            .ok_or_else(|| TenantError::UnknownSession(label.to_string()))?
            as usize;
        self.transition_to_draining(slot, now_ms);
        self.pump()?;
        let s = &self.sessions[slot];
        let dags_admitted = u32::try_from(s.dags.len()).expect("fits");
        Ok(CloseReply {
            dags_admitted,
            dags_in_flight: dags_admitted - s.dags_done,
            pending_events: s.events.len(),
        })
    }

    /// Reap sessions idle past the configured timeout, closing them as
    /// [`TenantService::close_session`] would. Returns the number
    /// reaped. No-op when reaping is disabled.
    pub fn tick(&mut self, now_ms: u64) -> usize {
        let Some(timeout) = self.cfg.idle_timeout_ms else {
            return 0;
        };
        let mut reaped = 0;
        for slot in 0..self.sessions.len() {
            let s = &self.sessions[slot];
            if s.state == SessionState::Open && now_ms.saturating_sub(s.last_activity_ms) > timeout
            {
                self.transition_to_draining(slot, now_ms);
                self.sessions_reaped += 1;
                reaped += 1;
            }
        }
        reaped
    }

    /// Close every session and run the world to quiescence. Used at
    /// shutdown and by tests asserting ledger balance.
    ///
    /// # Errors
    ///
    /// [`TenantError::Wedged`] if the platform hit an engine error.
    pub fn drain(&mut self, now_ms: u64) -> Result<(), TenantError> {
        for slot in 0..self.sessions.len() {
            self.transition_to_draining(slot, now_ms);
        }
        self.pump()
    }

    fn transition_to_draining(&mut self, slot: usize, now_ms: u64) {
        let s = &mut self.sessions[slot];
        if s.state != SessionState::Open {
            return;
        }
        s.state = if s.dags_done as usize == s.dags.len() {
            SessionState::Drained
        } else {
            SessionState::Draining
        };
        s.last_activity_ms = now_ms;
        let t = s.tenant;
        self.tenants[t].sessions_open -= 1;
    }

    /// The horizon virtual time may safely reach: strictly below the
    /// minimum frontier of open sessions; unbounded with none open.
    fn safe_horizon(&self) -> f64 {
        self.sessions
            .iter()
            .filter(|s| s.state == SessionState::Open)
            .map(|s| s.frontier)
            .fold(f64::INFINITY, f64::min)
    }

    /// Advance the shared platform to the safe horizon and
    /// materialize completions into per-session event buffers.
    fn pump(&mut self) -> Result<(), TenantError> {
        let safe = self.safe_horizon();
        let target = if safe == f64::INFINITY {
            f64::INFINITY
        } else if safe <= 0.0 {
            return Ok(());
        } else {
            // Exclusive horizon: events exactly at an open frontier
            // must wait until every session that could still submit
            // for that instant has moved past it.
            f64::from_bits(safe.to_bits() - 1)
        };
        let mut comps = std::mem::take(&mut self.scratch);
        comps.clear();
        let advanced = self.stepper.advance_until(target, &mut comps);
        if let Err(e) = advanced {
            self.scratch = comps;
            return Err(TenantError::Wedged(e));
        }
        for idx in comps.drain(..) {
            self.materialize(idx);
        }
        self.scratch = comps;
        Ok(())
    }

    /// Turn a retired placement into session events and accounting.
    fn materialize(&mut self, placement_idx: usize) {
        let pl = &self.stepper.placements()[placement_idx];
        let (task, end, procs) = (pl.task, pl.end, pl.procs);
        let (dag, local) = self.stepper.instance().locate(task);
        let owner = &mut self.dag_owner[dag.0 as usize];
        owner.n_materialized += 1;
        let dag_finished = owner.n_materialized == owner.n_tasks;
        let (slot, local_no) = (owner.session as usize, owner.local_no);
        let tenant = self.sessions[slot].tenant;

        let seq = self.next_event_seq;
        self.next_event_seq += 1;
        self.sessions[slot].events.push_back(SessionEvent {
            seq,
            dag: local_no,
            kind: EventKind::TaskDone {
                task: local.0,
                end,
                procs,
            },
        });
        self.tenants[tenant].tasks_in_flight -= 1;

        if dag_finished {
            let seq = self.next_event_seq;
            self.next_event_seq += 1;
            let s = &mut self.sessions[slot];
            s.events.push_back(SessionEvent {
                seq,
                dag: local_no,
                kind: EventKind::DagDone { at: end },
            });
            s.dags_done += 1;
            if s.state == SessionState::Draining && s.dags_done as usize == s.dags.len() {
                s.state = SessionState::Drained;
            }
            let tn = &mut self.tenants[tenant];
            tn.dags_in_flight -= 1;
            tn.ledger.ok += 1;
        }
    }

    fn tenant_slot(&mut self, name: &str) -> usize {
        if let Some(&i) = self.by_tenant.get(name) {
            return i as usize;
        }
        let i = u32::try_from(self.tenants.len()).expect("tenant count fits u32");
        self.tenants.push(Tenant {
            name: name.to_string(),
            sessions_open: 0,
            dags_in_flight: 0,
            tasks_in_flight: 0,
            ledger: Ledger::default(),
        });
        self.by_tenant.insert(name.to_string(), i);
        i as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moldable_graph::{GraphBuilder, TaskId};
    use moldable_model::SpeedupModel;

    const MU: f64 = 0.38;
    const ALGO: AlgoName = AlgoName::Icpp22;

    /// A fully serial task: `time(p) = w` for all `p`, so Algorithm 1
    /// allocates exactly one processor — start/end times in these
    /// tests stay round numbers.
    fn unit(w: f64) -> SpeedupModel {
        SpeedupModel::amdahl(0.0, w).unwrap()
    }

    fn chain(ws: &[f64]) -> Arc<TaskGraph> {
        let mut b = GraphBuilder::new();
        let ids: Vec<TaskId> = ws.iter().map(|&w| b.add_task(unit(w))).collect();
        for pair in ids.windows(2) {
            b.add_edge(pair[0], pair[1]).unwrap();
        }
        Arc::new(b.freeze())
    }

    fn svc(p: u32) -> TenantService {
        TenantService::new(TenantConfig::new(p, MU))
    }

    #[test]
    fn single_session_end_to_end() {
        let mut s = svc(4);
        let open = s.open_session("acme", "s1", 0).unwrap();
        assert_eq!(open.now, 0.0);
        let sub = s
            .submit_dag("s1", chain(&[1.0, 2.0]), 0.0, ALGO, 0)
            .unwrap();
        assert_eq!((sub.dag, sub.n_tasks), (0, 2));
        // Frontier still 0: nothing can run yet.
        let r = s.poll("s1", 0.0, 64, 0).unwrap();
        assert!(r.events.is_empty());
        // Promise no submissions before t=10: the chain completes.
        let r = s.poll("s1", 10.0, 64, 0).unwrap();
        assert_eq!(r.events.len(), 3, "2 TaskDone + 1 DagDone: {r:?}");
        assert_eq!(
            r.events[0].kind,
            EventKind::TaskDone {
                task: 0,
                end: 1.0,
                procs: 1
            }
        );
        assert_eq!(
            r.events[1].kind,
            EventKind::TaskDone {
                task: 1,
                end: 3.0,
                procs: 1
            }
        );
        assert_eq!(r.events[2].kind, EventKind::DagDone { at: 3.0 });
        assert!(!r.closed);
        let c = s.close_session("s1", 0).unwrap();
        assert_eq!(c.dags_in_flight, 0);
        let r = s.poll("s1", 0.0, 64, 0).unwrap();
        assert!(r.closed);
        assert_eq!(
            s.ledger("acme").unwrap(),
            Ledger {
                submitted: 1,
                ok: 1,
                errors: 0,
                drops: 0
            }
        );
    }

    #[test]
    fn frontier_gates_world_progress_across_sessions() {
        let mut s = svc(4);
        s.open_session("a", "fast", 0).unwrap();
        s.open_session("b", "slow", 0).unwrap();
        s.submit_dag("fast", chain(&[1.0]), 0.0, ALGO, 0).unwrap();
        // `slow` still pins the clock at 0 — polling `fast` far ahead
        // must not advance past slow's frontier.
        let r = s.poll("fast", 100.0, 64, 0).unwrap();
        assert!(r.events.is_empty(), "{r:?}");
        // slow promises t >= 50: fast's task (ends at 1) materializes.
        let r = s.poll("slow", 50.0, 64, 0).unwrap();
        assert!(r.events.is_empty());
        let r = s.poll("fast", 100.0, 64, 0).unwrap();
        assert_eq!(r.events.len(), 2);
    }

    #[test]
    fn submissions_below_the_frontier_are_rejected() {
        let mut s = svc(4);
        s.open_session("t", "s", 0).unwrap();
        s.submit_dag("s", chain(&[1.0]), 5.0, ALGO, 0).unwrap();
        let err = s.submit_dag("s", chain(&[1.0]), 4.0, ALGO, 0).unwrap_err();
        assert_eq!(
            err,
            TenantError::NonMonotonicSubmit {
                at: 4.0,
                frontier: 5.0
            }
        );
        // Equal to the frontier is fine (same-instant arrivals).
        s.submit_dag("s", chain(&[1.0]), 5.0, ALGO, 0).unwrap();
        let l = s.ledger("t").unwrap();
        assert_eq!((l.submitted, l.errors), (3, 1));
    }

    #[test]
    fn dag_quota_rejects_and_ledgers_drops() {
        let mut cfg = TenantConfig::new(4, MU);
        cfg.quotas.max_dags_in_flight = 2;
        let mut s = TenantService::new(cfg);
        s.open_session("t", "s", 0).unwrap();
        s.submit_dag("s", chain(&[1.0]), 0.0, ALGO, 0).unwrap();
        s.submit_dag("s", chain(&[1.0]), 0.0, ALGO, 0).unwrap();
        let err = s.submit_dag("s", chain(&[1.0]), 0.0, ALGO, 0).unwrap_err();
        assert!(err.is_quota(), "{err}");
        assert_eq!(
            err,
            TenantError::QuotaExceeded {
                scope: "dags",
                used: 2,
                limit: 2
            }
        );
        // Drain: in-flight DAGs complete, quota frees, ledger balances.
        s.drain(0).unwrap();
        let l = s.ledger("t").unwrap();
        assert_eq!(
            l,
            Ledger {
                submitted: 3,
                ok: 2,
                errors: 0,
                drops: 1
            }
        );
        assert_eq!(l.submitted, l.ok + l.errors + l.drops);
    }

    #[test]
    fn task_quota_counts_in_flight_tasks() {
        let mut cfg = TenantConfig::new(4, MU);
        cfg.quotas.max_tasks_in_flight = 3;
        let mut s = TenantService::new(cfg);
        s.open_session("t", "s", 0).unwrap();
        s.submit_dag("s", chain(&[1.0, 1.0]), 0.0, ALGO, 0).unwrap();
        let err = s
            .submit_dag("s", chain(&[1.0, 1.0]), 0.0, ALGO, 0)
            .unwrap_err();
        assert_eq!(
            err,
            TenantError::QuotaExceeded {
                scope: "tasks",
                used: 2,
                limit: 3
            }
        );
        // A 1-task DAG still fits.
        s.submit_dag("s", chain(&[1.0]), 0.0, ALGO, 0).unwrap();
    }

    #[test]
    fn session_quota_limits_concurrent_opens() {
        let mut cfg = TenantConfig::new(4, MU);
        cfg.quotas.max_sessions = 1;
        let mut s = TenantService::new(cfg);
        s.open_session("t", "s1", 0).unwrap();
        let err = s.open_session("t", "s2", 0).unwrap_err();
        assert!(err.is_quota());
        // Another tenant is unaffected; closing frees the slot.
        s.open_session("u", "u1", 0).unwrap();
        s.close_session("s1", 0).unwrap();
        s.open_session("t", "s3", 0).unwrap();
    }

    #[test]
    fn drain_on_close_keeps_events_pollable() {
        let mut s = svc(2);
        s.open_session("t", "s", 0).unwrap();
        s.submit_dag("s", chain(&[2.0, 3.0]), 0.0, ALGO, 0).unwrap();
        let c = s.close_session("s", 0).unwrap();
        // Closing lifts the frontier: the whole chain drains.
        assert_eq!(c.dags_admitted, 1);
        let r = s.poll("s", 0.0, 1, 0).unwrap();
        assert_eq!(r.events.len(), 1, "max_events respected");
        assert_eq!(r.pending_events, 2);
        assert!(!r.closed);
        let r = s.poll("s", 0.0, 64, 0).unwrap();
        assert_eq!(r.events.len(), 2);
        assert!(r.closed);
        // Submissions after close are structural errors.
        let err = s.submit_dag("s", chain(&[1.0]), 9.0, ALGO, 0).unwrap_err();
        assert_eq!(err, TenantError::SessionClosed("s".to_string()));
        let l = s.ledger("t").unwrap();
        assert_eq!(
            l,
            Ledger {
                submitted: 2,
                ok: 1,
                errors: 1,
                drops: 0
            }
        );
    }

    #[test]
    fn idle_sessions_are_reaped_and_unblock_the_clock() {
        let mut cfg = TenantConfig::new(4, MU);
        cfg.idle_timeout_ms = Some(1_000);
        let mut s = TenantService::new(cfg);
        s.open_session("t", "busy", 0).unwrap();
        s.open_session("t", "ghost", 0).unwrap();
        s.submit_dag("busy", chain(&[1.0]), 0.0, ALGO, 0).unwrap();
        // ghost pins the clock at 0; poll can't see the completion.
        let r = s.poll("busy", 10.0, 64, 1_500).unwrap();
        assert!(r.events.is_empty());
        // Wall time passes; ghost exceeds its idle budget.
        assert_eq!(s.tick(2_000), 1);
        assert_eq!(s.summary().sessions_reaped, 1);
        let r = s.poll("busy", 10.0, 64, 2_000).unwrap();
        assert_eq!(r.events.len(), 2, "{r:?}");
    }

    #[test]
    fn labels_stay_reserved_and_unknown_sessions_error() {
        let mut s = svc(2);
        s.open_session("t", "s", 0).unwrap();
        assert_eq!(
            s.open_session("t", "s", 0).unwrap_err(),
            TenantError::DuplicateSession("s".to_string())
        );
        s.close_session("s", 0).unwrap();
        assert_eq!(
            s.open_session("t", "s", 0).unwrap_err(),
            TenantError::DuplicateSession("s".to_string())
        );
        assert_eq!(
            s.poll("nope", 0.0, 1, 0).unwrap_err(),
            TenantError::UnknownSession("nope".to_string())
        );
    }

    #[test]
    fn empty_and_bad_submissions_are_structural_errors() {
        let mut s = svc(2);
        s.open_session("t", "s", 0).unwrap();
        let empty = Arc::new(GraphBuilder::new().freeze());
        assert_eq!(
            s.submit_dag("s", empty, 0.0, ALGO, 0).unwrap_err(),
            TenantError::EmptyDag
        );
        assert!(matches!(
            s.submit_dag("s", chain(&[1.0]), f64::NAN, ALGO, 0).unwrap_err(),
            TenantError::BadReleaseDate(at) if at.is_nan()
        ));
        let l = s.ledger("t").unwrap();
        assert_eq!((l.submitted, l.errors), (2, 2));
    }

    #[test]
    fn event_log_is_deterministic_across_runs() {
        let run = || {
            let mut s = svc(3);
            s.open_session("a", "a1", 0).unwrap();
            s.open_session("b", "b1", 0).unwrap();
            for i in 0..4 {
                let at = f64::from(i);
                s.submit_dag("a1", chain(&[1.0, 2.0]), at, ALGO, 0).unwrap();
                s.submit_dag("b1", chain(&[1.5]), at, ALGO, 0).unwrap();
            }
            s.drain(0).unwrap();
            let mut all = Vec::new();
            for label in ["a1", "b1"] {
                let r = s.poll(label, 0.0, usize::MAX, 0).unwrap();
                assert!(r.closed);
                all.extend(r.events.into_iter().map(|e| (e.seq, label, e.dag, e.kind)));
            }
            all.sort_by_key(|(seq, ..)| *seq);
            all
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Sequence numbers are the dense global order.
        for (i, (seq, ..)) in a.iter().enumerate() {
            assert_eq!(*seq, i as u64);
        }
    }

    #[test]
    fn fairness_a_flood_cannot_starve_a_quiet_tenant() {
        let mut s = svc(2);
        s.open_session("noisy", "n", 0).unwrap();
        s.open_session("quiet", "q", 0).unwrap();
        // noisy floods 40 unit tasks at t=0; quiet submits one.
        for _ in 0..20 {
            s.submit_dag("n", chain(&[1.0]), 0.0, ALGO, 0).unwrap();
        }
        s.submit_dag("q", chain(&[1.0]), 0.0, ALGO, 0).unwrap();
        s.drain(0).unwrap();
        let r = s.poll("q", 0.0, 64, 0).unwrap();
        let end = r
            .events
            .iter()
            .find_map(|e| match e.kind {
                EventKind::TaskDone { end, .. } => Some(end),
                EventKind::DagDone { .. } => None,
            })
            .unwrap();
        // With P=2 and DRR, the quiet task is in the first wave: it
        // must finish at t=1, not after the flood.
        assert_eq!(end, 1.0, "quiet tenant's task ran immediately");
    }

    #[test]
    fn ledger_balances_for_many_tenants_after_drain() {
        let mut cfg = TenantConfig::new(4, MU);
        cfg.quotas.max_dags_in_flight = 3;
        let mut s = TenantService::new(cfg);
        for t in 0..5 {
            let tenant = format!("t{t}");
            for k in 0..2 {
                let label = format!("t{t}-s{k}");
                s.open_session(&tenant, &label, 0).unwrap();
                for i in 0..4 {
                    let _ = s.submit_dag(&label, chain(&[1.0, 1.0]), f64::from(i), ALGO, 0);
                }
            }
        }
        s.drain(0).unwrap();
        for (_, l) in s.ledgers() {
            assert_eq!(l.submitted, l.ok + l.errors + l.drops, "{l:?}");
            assert_eq!(l.submitted, 8);
            assert!(l.drops > 0, "the 3-dag quota fired: {l:?}");
        }
        let sum = s.summary();
        assert_eq!(sum.sessions_open, 0);
        assert_eq!(sum.sessions_drained, 10);
    }
}
