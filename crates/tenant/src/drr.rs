//! Deficit-round-robin fairness across session slots.
//!
//! The session layer multiplexes many tenants' DAGs onto one platform
//! of `P` processors; the scheduler must prevent a flood from one
//! session starving the others. [`DrrScheduler`] adapts deficit round
//! robin (Shreedhar & Varghese) to processor allocation:
//!
//! * Each session owns a FIFO queue of ready tasks and a *deficit*
//!   counter in processor units. Allocation per task is the owning
//!   DAG's registered algorithm — `AlgoName::allocate(model, P, μ)`
//!   capped at `⌈μP⌉`, via one shared [`AllocCache`] per registered
//!   algorithm — the same per-task allocation the one-shot service
//!   computes; only the start-order policy (DRR instead of
//!   Algorithm 2's list order) differs. Sessions running different
//!   algorithms coexist on one platform.
//! * At each decision instant every non-empty queue is replenished by
//!   one quantum (capped at [`BURST_QUANTA`]× to bound burst credit),
//!   then a cyclic pass from a rotating cursor starts front tasks
//!   while they fit both the free processors and the session's
//!   deficit.
//! * A second, work-conserving pass ignores deficits: if processors
//!   are still free and *any* queued task fits, it starts — charged
//!   against the session's deficit (which may go negative, deferring
//!   it in later rounds). This pass makes the no-starvation invariant
//!   unconditional: after `select`, no queued task fits the remaining
//!   free processors, so a tenant can never hold ready work that fits
//!   while another tenant's processors idle.
//!
//! Determinism: slots are visited in slot-id order from a cursor that
//! only moves on phase-1 service; no hashing, no wall clock. Equal
//! world state ⇒ equal decisions, bit for bit.

use std::collections::VecDeque;

use moldable_core::registry::ALGOS;
use moldable_core::{AlgoName, AllocCache};
use moldable_graph::TaskId;
use moldable_model::SpeedupModel;
use moldable_sim::Scheduler;

/// Burst cap: a queue can bank at most this many quanta of deficit.
const BURST_QUANTA: f64 = 4.0;

struct Ready {
    task: TaskId,
    procs: u32,
}

#[derive(Default)]
struct Slot {
    queue: VecDeque<Ready>,
    deficit: f64,
}

/// Deficit-round-robin moldable scheduler over session slots.
pub struct DrrScheduler {
    /// One warm cache per registered algorithm, indexed in `ALGOS`
    /// order; a task allocates through its DAG's algorithm.
    caches: Vec<AllocCache>,
    p_total: u32,
    /// Global task id → owning slot; appended by
    /// [`DrrScheduler::register_tasks`] before the tasks can release.
    task_slot: Vec<u32>,
    /// Global task id → the owning DAG's algorithm, parallel to
    /// `task_slot`.
    task_algo: Vec<AlgoName>,
    slots: Vec<Slot>,
    cursor: usize,
    /// Decision-instant gate: the engine calls `select` repeatedly
    /// within one decision point; replenish deficits only on the
    /// first call at each distinct time.
    last_replenish: Option<u64>,
    started: u64,
}

impl DrrScheduler {
    /// A scheduler allocating with parameter `mu` on a platform of
    /// `p_total` processors (must match the engine's `SimOptions`).
    #[must_use]
    pub fn new(p_total: u32, mu: f64) -> Self {
        Self {
            caches: ALGOS
                .into_iter()
                .map(|a| AllocCache::for_algo(a, p_total, mu))
                .collect(),
            p_total,
            task_slot: Vec::new(),
            task_algo: Vec::new(),
            slots: Vec::new(),
            cursor: 0,
            last_replenish: None,
            started: 0,
        }
    }

    /// Declare that the next `n_tasks` global task ids belong to
    /// session `slot` and allocate with `algo`. Must be called in
    /// global-id order, before any of those tasks is released by the
    /// engine.
    pub fn register_tasks(&mut self, slot: usize, n_tasks: usize, algo: AlgoName) {
        if slot >= self.slots.len() {
            self.slots.resize_with(slot + 1, Slot::default);
        }
        let slot = u32::try_from(slot).expect("slot ids fit u32");
        self.task_slot.resize(self.task_slot.len() + n_tasks, slot);
        self.task_algo.resize(self.task_algo.len() + n_tasks, algo);
    }

    /// Number of session slots seen so far.
    #[must_use]
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Ready tasks currently queued for `slot`.
    #[must_use]
    pub fn queued(&self, slot: usize) -> usize {
        self.slots.get(slot).map_or(0, |s| s.queue.len())
    }

    /// Total tasks started over the scheduler's lifetime.
    #[must_use]
    pub fn n_started(&self) -> u64 {
        self.started
    }

    /// One quantum of deficit, in processor units: an equal share of
    /// the platform among sessions that currently hold ready work.
    fn quantum(&self) -> f64 {
        let active = self.slots.iter().filter(|s| !s.queue.is_empty()).count();
        f64::from(self.p_total) / active.max(1) as f64
    }
}

impl Scheduler for DrrScheduler {
    fn init(&mut self, p_total: u32) {
        assert_eq!(
            p_total, self.p_total,
            "DrrScheduler built for a different platform size"
        );
    }

    fn release(&mut self, task: TaskId, model: &SpeedupModel) {
        let slot = self.task_slot[task.index()] as usize;
        let algo = self.task_algo[task.index()];
        let cache = self
            .caches
            .iter_mut()
            .find(|c| c.algo() == algo)
            .expect("every registered algorithm has a cache");
        let procs = cache.allocate(model).capped;
        self.slots[slot].queue.push_back(Ready { task, procs });
    }

    fn select(&mut self, now: f64, free: u32) -> Vec<(TaskId, u32)> {
        let mut out = Vec::new();
        self.select_into(now, free, &mut out);
        out
    }

    fn select_into(&mut self, now: f64, mut free: u32, out: &mut Vec<(TaskId, u32)>) {
        let n = self.slots.len();
        if n == 0 || free == 0 {
            return;
        }
        if self.last_replenish != Some(now.to_bits()) {
            self.last_replenish = Some(now.to_bits());
            let quantum = self.quantum();
            let cap = BURST_QUANTA * quantum;
            for slot in &mut self.slots {
                if slot.queue.is_empty() {
                    // An idle session banks no credit (classic DRR);
                    // debts from work-conserving starts do persist.
                    slot.deficit = slot.deficit.min(0.0);
                } else {
                    slot.deficit = (slot.deficit + quantum).min(cap);
                }
            }
        }

        // Phase 1: cyclic DRR pass — serve within deficit.
        let start_cursor = self.cursor;
        for step in 0..n {
            let i = (start_cursor + step) % n;
            let slot = &mut self.slots[i];
            let mut served = false;
            while let Some(front) = slot.queue.front() {
                let cost = f64::from(front.procs);
                if front.procs > free || cost > slot.deficit {
                    break;
                }
                let r = slot.queue.pop_front().expect("front exists");
                slot.deficit -= cost;
                free -= r.procs;
                out.push((r.task, r.procs));
                self.started += 1;
                served = true;
            }
            if served {
                // Rotate past the last-served slot so the next pass
                // starts with its successor.
                self.cursor = (i + 1) % n;
            }
            if free == 0 {
                return;
            }
        }

        // Phase 2: work conservation — start anything that fits,
        // borrowing against the owner's future deficit.
        loop {
            let mut any = false;
            for step in 0..n {
                let i = (self.cursor + step) % n;
                let slot = &mut self.slots[i];
                while let Some(front) = slot.queue.front() {
                    if front.procs > free {
                        break;
                    }
                    let r = slot.queue.pop_front().expect("front exists");
                    slot.deficit -= f64::from(r.procs);
                    free -= r.procs;
                    out.push((r.task, r.procs));
                    self.started += 1;
                    any = true;
                }
                if free == 0 {
                    return;
                }
            }
            if !any {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fully serial (`t(p) = w`): Algorithm 1 allocates exactly one
    /// processor.
    fn unit(w: f64) -> SpeedupModel {
        SpeedupModel::amdahl(0.0, w).unwrap()
    }

    const MU: f64 = 0.38;

    #[test]
    fn single_slot_behaves_fifo() {
        let mut s = DrrScheduler::new(4, MU);
        s.init(4);
        s.register_tasks(0, 3, AlgoName::Icpp22);
        for i in 0..3 {
            s.release(TaskId(i), &unit(1.0));
        }
        let picks = s.select(0.0, 4);
        let tasks: Vec<u32> = picks.iter().map(|(t, _)| t.0).collect();
        assert_eq!(tasks, vec![0, 1, 2], "FIFO within a slot");
        assert!(s.select(0.0, 4).is_empty(), "drained");
    }

    #[test]
    fn contended_slots_split_the_platform() {
        // Two slots, each with plenty of 1-proc work, P = 4: the DRR
        // pass gives each a quantum of 2, so the start batch holds two
        // tasks from each slot.
        let mut s = DrrScheduler::new(4, MU);
        s.init(4);
        s.register_tasks(0, 4, AlgoName::Icpp22);
        s.register_tasks(1, 4, AlgoName::Icpp22);
        for i in 0..4 {
            s.release(TaskId(i), &unit(1.0));
        }
        for i in 4..8 {
            s.release(TaskId(i), &unit(1.0));
        }
        let picks = s.select(0.0, 4);
        let mine = picks.iter().filter(|(t, _)| t.0 < 4).count();
        let theirs = picks.len() - mine;
        assert_eq!((mine, theirs), (2, 2), "equal split under contention");
    }

    #[test]
    fn work_conservation_never_idles_fitting_work() {
        // Slot 0 has burned its deficit; its queued work still starts
        // when no one else wants the processors.
        let mut s = DrrScheduler::new(2, MU);
        s.init(2);
        s.register_tasks(0, 6, AlgoName::Icpp22);
        for i in 0..6 {
            s.release(TaskId(i), &unit(1.0));
        }
        let first = s.select(0.0, 2);
        assert_eq!(first.len(), 2, "phase 2 fills past the quantum");
        let second = s.select(1.0, 2);
        assert_eq!(second.len(), 2);
        let third = s.select(2.0, 2);
        assert_eq!(third.len(), 2);
        assert_eq!(s.n_started(), 6);
    }

    #[test]
    fn replenish_happens_once_per_decision_instant() {
        let mut s = DrrScheduler::new(2, MU);
        s.init(2);
        s.register_tasks(0, 2, AlgoName::Icpp22);
        s.release(TaskId(0), &unit(1.0));
        let _ = s.select(0.0, 1);
        let d_after = s.slots[0].deficit;
        // Re-entry at the same instant (the engine's decide loop)
        // must not grant more credit.
        let _ = s.select(0.0, 0);
        assert_eq!(s.slots[0].deficit.to_bits(), d_after.to_bits());
    }

    #[test]
    fn starvation_is_impossible_while_processors_fit() {
        // Slot 0 floods; slot 1 has one task. After any select, no
        // queued task may fit the remaining free processors.
        let mut s = DrrScheduler::new(3, MU);
        s.init(3);
        s.register_tasks(0, 50, AlgoName::Icpp22);
        s.register_tasks(1, 1, AlgoName::Icpp22);
        for i in 0..50 {
            s.release(TaskId(i), &unit(1.0));
        }
        s.release(TaskId(50), &unit(1.0));
        let picks = s.select(0.0, 3);
        assert!(
            picks.iter().any(|(t, _)| t.0 == 50),
            "the lone task of the quiet slot is in the first batch: {picks:?}"
        );
    }

    #[test]
    fn allocation_follows_each_dags_algorithm() {
        // amdahl(30, 10) on P=16, mu=0.3: Algorithm 2 (min area under
        // the time stretch) picks p=3; the dual allocation (min time
        // under the area budget) spends its λ budget and picks p=4.
        // Two slots registered under different algorithms must see
        // exactly those allocations for the same model.
        let model = SpeedupModel::amdahl(30.0, 10.0).unwrap();
        let mut s = DrrScheduler::new(16, 0.3);
        s.init(16);
        s.register_tasks(0, 1, AlgoName::Icpp22);
        s.register_tasks(1, 1, AlgoName::Improved23);
        s.release(TaskId(0), &model);
        s.release(TaskId(1), &model);
        let picks = s.select(0.0, 16);
        let procs_of = |id: u32| picks.iter().find(|(t, _)| t.0 == id).unwrap().1;
        assert_eq!(
            procs_of(0),
            AlgoName::Icpp22.allocate(&model, 16, 0.3).capped
        );
        assert_eq!(
            procs_of(1),
            AlgoName::Improved23.allocate(&model, 16, 0.3).capped
        );
        assert_ne!(
            procs_of(0),
            procs_of(1),
            "the two algorithms must differ on this model for the test to bite"
        );
    }

    #[test]
    fn oversized_allocations_are_capped_to_fit_eventually() {
        // A task whose cap exceeds current free waits, but fits a full
        // platform: mu-capped allocations never exceed ceil(mu * P).
        let mut s = DrrScheduler::new(16, MU);
        s.init(16);
        s.register_tasks(0, 1, AlgoName::Icpp22);
        s.release(TaskId(0), &SpeedupModel::amdahl(100.0, 0.0).unwrap());
        let picks = s.select(0.0, 1);
        assert!(picks.is_empty(), "does not fit one free proc");
        let picks = s.select(1.0, 16);
        assert_eq!(picks.len(), 1);
        assert!(picks[0].1 <= 7, "capped at ceil(mu * 16)");
    }
}
