//! Streaming multi-tenant session layer: online DAG arrivals as a
//! service.
//!
//! The one-shot pipeline (generate → schedule → reply) treats each
//! request as its own private platform. This crate models the setting
//! the paper actually studies — *online* arrivals competing for one
//! set of `P` processors — as a long-lived service: tenants open
//! sessions, stream task graphs with release dates, and read back
//! completions incrementally while every session's work contends on
//! the same simulated platform.
//!
//! Three layers, bottom up:
//!
//! * [`WorldInstance`] — a growing multi-DAG
//!   [`moldable_sim::Instance`] with deterministic arrival order.
//! * [`DrrScheduler`] — deficit-round-robin fairness across sessions,
//!   work-conserving, allocating per task with Algorithm 1.
//! * [`TenantService`] — session lifecycle (open/submit/poll/close,
//!   idle reaping), per-tenant admission quotas, conservative virtual
//!   time, and a per-tenant accounting ledger.
//!
//! Determinism is the design invariant: the full event log is a pure
//! function of the submitted workload, independent of how client
//! requests interleave in wall time (see the conservative-sync notes
//! on [`TenantService`]).

#![forbid(unsafe_code)]

mod drr;
mod service;
mod world;

pub use drr::DrrScheduler;
pub use service::{
    CloseReply, EventKind, Ledger, OpenReply, PollReply, ServiceSummary, SessionEvent,
    SessionState, SubmitReply, TenantConfig, TenantError, TenantQuotas, TenantService,
};
pub use world::{DagIdx, IdSpaceExhausted, WorldInstance};
