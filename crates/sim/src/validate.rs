//! Schedule validation: the safety net under every experiment.
//!
//! Both simulated and hand-built (proof) schedules are checked against
//! the platform model: each task placed exactly once, durations
//! consistent with the speedup model, precedence respected, and at most
//! `P` processors busy at any instant.

use std::fmt;

use moldable_graph::{TaskGraph, TaskId};

use crate::Schedule;

/// A violation found by [`Schedule::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// A task of the graph never ran.
    MissingTask(TaskId),
    /// The schedule placed a task that is not part of the graph.
    ForeignTask(TaskId),
    /// A task ran more than once (no restarts allowed).
    DuplicateTask(TaskId),
    /// Allocation outside `[1, P]`.
    BadAllocation {
        /// Offending task.
        task: TaskId,
        /// Its processor allocation.
        procs: u32,
    },
    /// Placement duration does not equal `t(procs)`.
    WrongDuration {
        /// Offending task.
        task: TaskId,
        /// Duration found in the schedule.
        got: f64,
        /// Duration the model dictates.
        want: f64,
    },
    /// A task started before one of its predecessors finished.
    PrecedenceViolated {
        /// The dependent task.
        task: TaskId,
        /// The predecessor that was still running.
        pred: TaskId,
    },
    /// More than `P` processors busy at some instant.
    CapacityExceeded {
        /// A time at which the platform was oversubscribed.
        time: f64,
        /// Processors in use at that time.
        used: u64,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingTask(t) => write!(f, "task {t} never executed"),
            Self::ForeignTask(t) => write!(f, "task {t} is not part of the graph"),
            Self::DuplicateTask(t) => write!(f, "task {t} executed more than once"),
            Self::BadAllocation { task, procs } => {
                write!(f, "task {task} has invalid allocation {procs}")
            }
            Self::WrongDuration { task, got, want } => {
                write!(f, "task {task} ran for {got}, model says {want}")
            }
            Self::PrecedenceViolated { task, pred } => {
                write!(f, "task {task} started before predecessor {pred} finished")
            }
            Self::CapacityExceeded { time, used } => {
                write!(f, "{used} processors busy at t={time}")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Relative tolerance used for time comparisons: durations are computed
/// in one `f64` expression each, so only a few ulps of slack are needed.
const RTOL: f64 = 1e-9;

impl Schedule {
    /// Validate this schedule against `graph`.
    ///
    /// # Errors
    ///
    /// Returns the first violation found (completeness, allocation
    /// range, model-consistent durations, precedence, capacity).
    pub fn validate(&self, graph: &TaskGraph) -> Result<(), ValidationError> {
        self.validate_inner(graph, true)
    }

    /// Like [`Schedule::validate`] but skipping the duration-vs-model
    /// check — used for schedules of *adaptive* instances whose
    /// realized models are known to the adversary, not the graph.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation found.
    pub fn validate_structure(&self, graph: &TaskGraph) -> Result<(), ValidationError> {
        self.validate_inner(graph, false)
    }

    fn validate_inner(
        &self,
        graph: &TaskGraph,
        check_durations: bool,
    ) -> Result<(), ValidationError> {
        let n = graph.n_tasks();
        let mut seen: Vec<Option<usize>> = vec![None; n];
        for (idx, pl) in self.placements.iter().enumerate() {
            let t = pl.task;
            if t.index() >= n {
                return Err(ValidationError::ForeignTask(t));
            }
            if seen[t.index()].is_some() {
                return Err(ValidationError::DuplicateTask(t));
            }
            seen[t.index()] = Some(idx);
            if pl.procs == 0 || pl.procs > self.p_total {
                return Err(ValidationError::BadAllocation {
                    task: t,
                    procs: pl.procs,
                });
            }
            if check_durations {
                let want = graph.model(t).time(pl.procs);
                let got = pl.duration();
                if (got - want).abs() > RTOL * want.max(1.0) {
                    return Err(ValidationError::WrongDuration { task: t, got, want });
                }
            }
        }
        for t in graph.task_ids() {
            if seen[t.index()].is_none() {
                return Err(ValidationError::MissingTask(t));
            }
        }
        // Precedence.
        let tol = RTOL * self.makespan.max(1.0);
        for t in graph.task_ids() {
            let start = self.placements[seen[t.index()].expect("checked")].start;
            for &p in graph.preds(t) {
                let pred_end = self.placements[seen[p.index()].expect("checked")].end;
                if start < pred_end - tol {
                    return Err(ValidationError::PrecedenceViolated { task: t, pred: p });
                }
            }
        }
        self.check_capacity(tol)
    }

    /// Sweep-line capacity check, independently useful for hand-built
    /// schedules over instances without a full graph.
    ///
    /// # Errors
    ///
    /// Returns [`ValidationError::CapacityExceeded`] if more than
    /// `p_total` processors are ever busy (after merging events closer
    /// than `tol`).
    pub fn check_capacity(&self, tol: f64) -> Result<(), ValidationError> {
        // Events: +procs at start, −procs at end. Ends sort before
        // starts at (numerically) equal times so back-to-back tasks
        // don't double-count.
        let mut events: Vec<(f64, i8, u32)> = Vec::with_capacity(self.placements.len() * 2);
        for pl in &self.placements {
            events.push((pl.start, 1, pl.procs));
            events.push((pl.end, -1, pl.procs));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut used: i64 = 0;
        let mut i = 0;
        while i < events.len() {
            let t0 = events[i].0;
            // apply all events within tol of t0, ends first
            let mut j = i;
            while j < events.len() && events[j].0 - t0 <= tol {
                j += 1;
            }
            let mut batch: Vec<&(f64, i8, u32)> = events[i..j].iter().collect();
            batch.sort_by_key(|a| a.1);
            for &&(_, sign, procs) in &batch {
                used += i64::from(sign) * i64::from(procs);
            }
            if used > i64::from(self.p_total) {
                return Err(ValidationError::CapacityExceeded {
                    time: t0,
                    used: u64::try_from(used).expect("positive"),
                });
            }
            i = j;
        }
        debug_assert_eq!(used, 0, "every start has a matching end");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScheduleBuilder;
    use moldable_graph::GraphBuilder;
    use moldable_model::SpeedupModel;

    fn two_task_graph() -> (TaskGraph, TaskId, TaskId) {
        let mut g = GraphBuilder::new();
        let a = g.add_task(SpeedupModel::amdahl(4.0, 0.0).unwrap());
        let b = g.add_task(SpeedupModel::amdahl(2.0, 0.0).unwrap());
        g.add_edge(a, b).unwrap();
        let g = g.freeze();
        (g, a, b)
    }

    #[test]
    fn valid_schedule_passes() {
        let (g, a, b) = two_task_graph();
        let mut sb = ScheduleBuilder::new(4);
        sb.place(a, 0.0, 1.0, 4); // t(4) = 1
        sb.place(b, 1.0, 1.0, 2); // t(2) = 1
        sb.build().validate(&g).unwrap();
    }

    #[test]
    fn missing_task_detected() {
        let (g, a, _b) = two_task_graph();
        let mut sb = ScheduleBuilder::new(4);
        sb.place(a, 0.0, 1.0, 4);
        let err = sb.build().validate(&g).unwrap_err();
        assert!(matches!(err, ValidationError::MissingTask(_)));
    }

    #[test]
    fn duplicate_task_detected() {
        let (g, a, b) = two_task_graph();
        let mut sb = ScheduleBuilder::new(4);
        sb.place(a, 0.0, 1.0, 4);
        sb.place(b, 1.0, 1.0, 2);
        sb.place(a, 2.0, 1.0, 4);
        let err = sb.build().validate(&g).unwrap_err();
        assert_eq!(err, ValidationError::DuplicateTask(a));
    }

    #[test]
    fn wrong_duration_detected() {
        let (g, a, b) = two_task_graph();
        let mut sb = ScheduleBuilder::new(4);
        sb.place(a, 0.0, 5.0, 4); // model says 1.0
        sb.place(b, 5.0, 1.0, 2);
        let err = sb.build().validate(&g).unwrap_err();
        assert!(matches!(err, ValidationError::WrongDuration { task, .. } if task == a));
        // validate_structure ignores durations
        let mut sb = ScheduleBuilder::new(4);
        sb.place(a, 0.0, 5.0, 4);
        sb.place(b, 5.0, 1.0, 2);
        sb.build().validate_structure(&g).unwrap();
    }

    #[test]
    fn precedence_violation_detected() {
        let (g, a, b) = two_task_graph();
        let mut sb = ScheduleBuilder::new(4);
        sb.place(a, 0.0, 1.0, 4);
        sb.place(b, 0.5, 1.0, 2); // starts before a ends
        let err = sb.build().validate_structure(&g).unwrap_err();
        assert_eq!(
            err,
            ValidationError::PrecedenceViolated { task: b, pred: a }
        );
    }

    #[test]
    fn capacity_violation_detected() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(SpeedupModel::amdahl(3.0, 0.0).unwrap());
        let b = g.add_task(SpeedupModel::amdahl(3.0, 0.0).unwrap());
        let g = g.freeze();
        let mut sb = ScheduleBuilder::new(4);
        sb.place(a, 0.0, 1.0, 3);
        sb.place(b, 0.5, 1.0, 3); // overlap: 6 > 4
        let err = sb.build().validate_structure(&g).unwrap_err();
        assert!(matches!(
            err,
            ValidationError::CapacityExceeded { used: 6, .. }
        ));
    }

    #[test]
    fn back_to_back_full_platform_is_fine() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(SpeedupModel::amdahl(4.0, 0.0).unwrap());
        let b = g.add_task(SpeedupModel::amdahl(4.0, 0.0).unwrap());
        let g = g.freeze();
        let mut sb = ScheduleBuilder::new(4);
        sb.place(a, 0.0, 1.0, 4);
        sb.place(b, 1.0, 1.0, 4); // starts exactly when a ends
        sb.build().validate_structure(&g).unwrap();
    }

    #[test]
    fn bad_allocation_detected() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(SpeedupModel::amdahl(4.0, 0.0).unwrap());
        let g = g.freeze();
        let mut sb = ScheduleBuilder::new(4);
        sb.place(a, 0.0, 0.5, 8);
        let err = sb.build().validate_structure(&g).unwrap_err();
        assert_eq!(err, ValidationError::BadAllocation { task: a, procs: 8 });
    }
}
