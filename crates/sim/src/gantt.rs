//! ASCII Gantt rendering — used to regenerate the schedule-shape
//! figures (the paper's Figures 2 and 4).
//!
//! Each processor is one row; time flows left to right. Tasks are drawn
//! with single-character labels supplied by the caller, so related task
//! groups (the paper's `T_A`, `T_B`, `T_C`) are visually distinct.

use crate::Schedule;

/// Render `schedule` as an ASCII Gantt chart with `width` time columns.
///
/// Requires the schedule to carry concrete processor ids (simulate with
/// [`crate::SimOptions::with_proc_ids`], or hand-build placements with
/// `proc_ranges`). Placements without processor ids are skipped.
///
/// `label(task_index)` returns the single character drawn in that
/// task's cells.
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn gantt_ascii(
    schedule: &Schedule,
    width: usize,
    mut label: impl FnMut(usize) -> char,
) -> String {
    assert!(width > 0);
    let p = schedule.p_total as usize;
    if schedule.makespan <= 0.0 {
        return String::from("(empty schedule)\n");
    }
    let scale = width as f64 / schedule.makespan;
    let mut grid = vec![vec!['.'; width]; p];
    for pl in &schedule.placements {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let c0 = ((pl.start * scale).floor() as usize).min(width - 1);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let mut c1 = ((pl.end * scale).ceil() as usize).min(width);
        if c1 <= c0 {
            c1 = c0 + 1;
        }
        let ch = label(pl.task.index());
        for &(lo, hi) in &pl.proc_ranges {
            for row in lo..=hi {
                for cell in &mut grid[row as usize][c0..c1] {
                    // First writer wins: keeps sub-pixel tasks visible
                    // instead of being painted over by a later neighbour.
                    if *cell == '.' {
                        *cell = ch;
                    }
                }
            }
        }
    }
    let mut out = String::with_capacity(p * (width + 8));
    // Top row = highest processor id, like the paper's figures.
    for (row, cells) in grid.iter().enumerate().rev() {
        out.push_str(&format!("p{row:<4} |"));
        out.extend(cells.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "      +{} t=0 .. t={:.4}\n",
        "-".repeat(width),
        schedule.makespan
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScheduleBuilder;
    use moldable_graph::TaskId;

    fn schedule_with_ids() -> Schedule {
        let mut sb = ScheduleBuilder::new(4);
        sb.place(TaskId(0), 0.0, 1.0, 2);
        sb.place(TaskId(1), 1.0, 1.0, 4);
        let mut s = sb.build();
        s.placements[0].proc_ranges = vec![(0, 1)];
        s.placements[1].proc_ranges = vec![(0, 3)];
        s
    }

    #[test]
    fn gantt_draws_rows_and_labels() {
        let s = schedule_with_ids();
        let out = gantt_ascii(&s, 20, |i| if i == 0 { 'A' } else { 'B' });
        assert_eq!(out.lines().count(), 5); // 4 proc rows + axis
        assert!(out.contains('A'));
        assert!(out.contains('B'));
        // processor 3 idle during first half: contains dots then B
        let p3 = out.lines().next().unwrap();
        assert!(p3.starts_with("p3"));
        assert!(p3.contains('.'));
        assert!(p3.contains('B'));
        assert!(!p3.contains('A'));
    }

    #[test]
    fn empty_schedule_renders_placeholder() {
        let s = ScheduleBuilder::new(2).build();
        assert_eq!(gantt_ascii(&s, 10, |_| 'x'), "(empty schedule)\n");
    }

    #[test]
    fn tiny_tasks_still_visible() {
        let mut sb = ScheduleBuilder::new(1);
        sb.place(TaskId(0), 0.0, 0.001, 1);
        sb.place(TaskId(1), 0.001, 10.0, 1);
        let mut s = sb.build();
        s.placements[0].proc_ranges = vec![(0, 0)];
        s.placements[1].proc_ranges = vec![(0, 0)];
        let out = gantt_ascii(&s, 40, |i| if i == 0 { 'a' } else { 'b' });
        assert!(out.contains('a'), "sub-pixel task must still get one cell");
    }
}
