//! Concrete processor-id bookkeeping.
//!
//! The scheduling theory only needs processor *counts*, but drawing a
//! Gantt chart (Figures 2 and 4 of the paper) needs concrete processor
//! ids. [`ProcPool`] is a tiny interval allocator over `0..P`: tasks
//! receive the lowest free ids as a set of disjoint ranges, and ranges
//! are coalesced on free.

/// Interval allocator over processor ids `0..p_total`.
#[derive(Debug, Clone)]
pub struct ProcPool {
    /// Disjoint, sorted, coalesced free ranges `[lo, hi]` (inclusive).
    free: Vec<(u32, u32)>,
    p_total: u32,
}

impl ProcPool {
    /// A pool with all of `0..p_total` free.
    ///
    /// # Panics
    ///
    /// Panics if `p_total == 0`.
    #[must_use]
    pub fn new(p_total: u32) -> Self {
        assert!(p_total >= 1);
        Self {
            free: vec![(0, p_total - 1)],
            p_total,
        }
    }

    /// Number of free processors.
    #[must_use]
    pub fn n_free(&self) -> u32 {
        self.free.iter().map(|(lo, hi)| hi - lo + 1).sum()
    }

    /// Allocate `n` processors, lowest ids first. Returns the acquired
    /// ranges, or `None` (pool unchanged) if fewer than `n` are free.
    pub fn alloc(&mut self, n: u32) -> Option<Vec<(u32, u32)>> {
        if n == 0 || self.n_free() < n {
            return None;
        }
        let mut got = Vec::new();
        let mut need = n;
        let i = 0;
        while need > 0 {
            let (lo, hi) = self.free[i];
            let len = hi - lo + 1;
            if len <= need {
                got.push((lo, hi));
                need -= len;
                self.free.remove(i);
            } else {
                got.push((lo, lo + need - 1));
                self.free[i].0 = lo + need;
                need = 0;
            }
        }
        Some(got)
    }

    /// Return previously allocated ranges to the pool, coalescing
    /// adjacent free ranges.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if a returned range overlaps a free one
    /// or exceeds the pool bounds.
    pub fn release(&mut self, ranges: &[(u32, u32)]) {
        for &(lo, hi) in ranges {
            debug_assert!(lo <= hi && hi < self.p_total, "range out of bounds");
            let pos = self.free.partition_point(|&(l, _)| l < lo);
            debug_assert!(
                (pos == 0 || self.free[pos - 1].1 < lo)
                    && (pos == self.free.len() || hi < self.free[pos].0),
                "double free of processors [{lo}, {hi}]"
            );
            self.free.insert(pos, (lo, hi));
            // coalesce with right neighbour
            if pos + 1 < self.free.len() && self.free[pos].1 + 1 == self.free[pos + 1].0 {
                self.free[pos].1 = self.free[pos + 1].1;
                self.free.remove(pos + 1);
            }
            // coalesce with left neighbour
            if pos > 0 && self.free[pos - 1].1 + 1 == self.free[pos].0 {
                self.free[pos - 1].1 = self.free[pos].1;
                self.free.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_lowest_first() {
        let mut p = ProcPool::new(8);
        assert_eq!(p.alloc(3), Some(vec![(0, 2)]));
        assert_eq!(p.alloc(2), Some(vec![(3, 4)]));
        assert_eq!(p.n_free(), 3);
    }

    #[test]
    fn alloc_spans_fragments() {
        let mut p = ProcPool::new(8);
        let a = p.alloc(2).unwrap(); // 0-1
        let b = p.alloc(2).unwrap(); // 2-3
        let _c = p.alloc(2).unwrap(); // 4-5
        p.release(&a); // free: 0-1, 6-7
        p.release(&b); // coalesce: 0-3, 6-7
        assert_eq!(p.n_free(), 6);
        let d = p.alloc(5).unwrap();
        assert_eq!(d, vec![(0, 3), (6, 6)]);
        assert_eq!(p.n_free(), 1);
    }

    #[test]
    fn alloc_fails_leaves_pool_intact() {
        let mut p = ProcPool::new(4);
        let _ = p.alloc(3).unwrap();
        assert_eq!(p.alloc(2), None);
        assert_eq!(p.n_free(), 1);
        assert_eq!(p.alloc(0), None);
    }

    #[test]
    fn release_coalesces_both_sides() {
        let mut p = ProcPool::new(10);
        let a = p.alloc(3).unwrap(); // 0-2
        let b = p.alloc(3).unwrap(); // 3-5
        let c = p.alloc(3).unwrap(); // 6-8
        p.release(&a);
        p.release(&c); // free: 0-2, 6-9
        p.release(&b); // all coalesced: 0-9
        assert_eq!(p.n_free(), 10);
        assert_eq!(p.alloc(10), Some(vec![(0, 9)]));
    }

    #[test]
    fn exhaustive_alloc_release_cycle() {
        let mut p = ProcPool::new(5);
        let all = p.alloc(5).unwrap();
        assert_eq!(p.n_free(), 0);
        assert_eq!(p.alloc(1), None);
        p.release(&all);
        assert_eq!(p.n_free(), 5);
    }
}
