//! Online-independent-tasks instance: tasks with release dates.
//!
//! This is the other online model from the paper's Table 2 (Ye et al.,
//! Havill & Mao): tasks are *independent* but arrive over time, and the
//! scheduler learns a task's speedup function only at its release date.

use moldable_graph::TaskId;
use moldable_model::SpeedupModel;

use crate::Instance;

/// A stream of independent moldable tasks with release dates.
#[derive(Debug)]
pub struct TimedArrivals {
    /// `(release date, model)` sorted by release date.
    releases: Vec<(f64, SpeedupModel)>,
    next: usize,
    completed: usize,
}

impl TimedArrivals {
    /// Build from `(release date, model)` pairs; the list is sorted
    /// internally. Task `i` (after sorting) gets `TaskId(i)`.
    ///
    /// # Panics
    ///
    /// Panics if any release date is negative or non-finite.
    #[must_use]
    pub fn new(mut releases: Vec<(f64, SpeedupModel)>) -> Self {
        for (r, _) in &releases {
            assert!(
                r.is_finite() && *r >= 0.0,
                "release dates must be finite and >= 0"
            );
        }
        releases.sort_by(|a, b| a.0.total_cmp(&b.0));
        Self {
            releases,
            next: 0,
            completed: 0,
        }
    }

    /// Number of tasks in the stream.
    #[must_use]
    pub fn len(&self) -> usize {
        self.releases.len()
    }

    /// Is the stream empty?
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.releases.is_empty()
    }

    /// The (sorted) release date of task `i`.
    #[must_use]
    pub fn release_date(&self, i: usize) -> f64 {
        self.releases[i].0
    }
}

impl Instance for TimedArrivals {
    fn initial(&mut self) -> Vec<TaskId> {
        // Tasks with release date 0 come through `arrivals` at t = 0.
        Vec::new()
    }

    fn on_complete(&mut self, _task: TaskId, _time: f64) -> Vec<TaskId> {
        self.completed += 1;
        Vec::new()
    }

    fn is_done(&self) -> bool {
        self.completed == self.releases.len()
    }

    fn model(&self, task: TaskId) -> &SpeedupModel {
        &self.releases[task.index()].1
    }

    fn size_hint(&self) -> usize {
        self.releases.len()
    }

    fn next_arrival(&self) -> Option<f64> {
        self.releases.get(self.next).map(|(r, _)| *r)
    }

    fn arrivals(&mut self, time: f64) -> Vec<TaskId> {
        let mut out = Vec::new();
        while let Some((r, _)) = self.releases.get(self.next) {
            if *r <= time {
                out.push(TaskId(u32::try_from(self.next).expect("fits u32")));
                self.next += 1;
            } else {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_instance, Scheduler, SimOptions};

    /// Greedy: run every released task immediately on 1 processor.
    #[derive(Default)]
    struct OneProcGreedy {
        queue: Vec<TaskId>,
    }

    impl Scheduler for OneProcGreedy {
        fn release(&mut self, task: TaskId, _m: &SpeedupModel) {
            self.queue.push(task);
        }
        fn select(&mut self, _now: f64, free: u32) -> Vec<(TaskId, u32)> {
            let take = (free as usize).min(self.queue.len());
            self.queue.drain(..take).map(|t| (t, 1)).collect()
        }
    }

    fn unit(w: f64) -> SpeedupModel {
        SpeedupModel::amdahl(w, 0.0).unwrap()
    }

    #[test]
    fn tasks_wait_for_their_release_dates() {
        let mut inst =
            TimedArrivals::new(vec![(0.0, unit(1.0)), (5.0, unit(1.0)), (5.0, unit(1.0))]);
        let s = simulate_instance(
            &mut inst,
            &mut OneProcGreedy::default(),
            &SimOptions::new(4),
        )
        .unwrap();
        assert_eq!(s.placements[0].start, 0.0);
        // Both late tasks start exactly at their release date (idle gap
        // in between — the engine must jump, not deadlock).
        assert_eq!(s.placements[1].start, 5.0);
        assert_eq!(s.placements[2].start, 5.0);
        assert_eq!(s.makespan, 6.0);
        s.check_capacity(1e-9).unwrap();
    }

    #[test]
    fn arrival_during_execution_is_picked_up_at_release() {
        let mut inst = TimedArrivals::new(vec![(0.0, unit(10.0)), (2.0, unit(1.0))]);
        let s = simulate_instance(
            &mut inst,
            &mut OneProcGreedy::default(),
            &SimOptions::new(2),
        )
        .unwrap();
        // Second task arrives at t = 2 while the first still runs; a
        // processor is free, so it starts immediately at its release.
        assert_eq!(s.placements[1].start, 2.0);
        assert_eq!(s.makespan, 10.0);
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let mut inst = TimedArrivals::new(vec![(3.0, unit(1.0)), (1.0, unit(2.0))]);
        assert_eq!(inst.release_date(0), 1.0);
        assert_eq!(inst.next_arrival(), Some(1.0));
        let got = inst.arrivals(2.0);
        assert_eq!(got, vec![TaskId(0)]);
    }

    #[test]
    fn empty_stream_simulates_to_empty_schedule() {
        let mut inst = TimedArrivals::new(Vec::new());
        let s = simulate_instance(
            &mut inst,
            &mut OneProcGreedy::default(),
            &SimOptions::new(2),
        )
        .unwrap();
        assert_eq!(s.makespan, 0.0);
        assert!(inst.is_empty());
    }

    #[test]
    #[should_panic(expected = "release dates")]
    fn rejects_negative_release() {
        let _ = TimedArrivals::new(vec![(-1.0, unit(1.0))]);
    }

    #[test]
    fn simultaneous_arrivals_at_one_instant_release_in_submission_order() {
        // Three tasks share one release date. `sort_by` is stable, so
        // equal dates keep their submission order, ids are assigned in
        // that order, and one `arrivals` call returns all of them.
        let mut inst =
            TimedArrivals::new(vec![(2.0, unit(1.0)), (2.0, unit(2.0)), (2.0, unit(3.0))]);
        assert_eq!(inst.next_arrival(), Some(2.0));
        let got = inst.arrivals(2.0);
        assert_eq!(got, vec![TaskId(0), TaskId(1), TaskId(2)]);
        assert_eq!(inst.next_arrival(), None, "the instant was fully drained");
        // The model of each id is the one submitted at that position.
        assert_eq!(inst.model(TaskId(1)).time(1), 2.0);
    }

    #[test]
    fn zero_length_gaps_queue_beyond_capacity_deterministically() {
        // Five tasks, zero inter-arrival gap, two processors: the
        // overflow queues in release order — starts at 1, 1, 2, 2, 3.
        let releases: Vec<(f64, SpeedupModel)> = (0..5).map(|_| (1.0, unit(1.0))).collect();
        let mut inst = TimedArrivals::new(releases);
        let s = simulate_instance(
            &mut inst,
            &mut OneProcGreedy::default(),
            &SimOptions::new(2),
        )
        .unwrap();
        let starts: Vec<f64> = s.placements.iter().map(|p| p.start).collect();
        assert_eq!(starts, vec![1.0, 1.0, 2.0, 2.0, 3.0]);
        let tasks: Vec<u32> = s.placements.iter().map(|p| p.task.0).collect();
        assert_eq!(tasks, vec![0, 1, 2, 3, 4], "FIFO order across the tie");
        assert_eq!(s.makespan, 4.0);
    }

    #[test]
    fn equal_date_ties_are_stable_under_interleaved_submission() {
        // Ties submitted out of order with distinct models: after the
        // stable sort, the 1.0-dated pair keeps submission order
        // (w=10 before w=20) and so does the 0.0-dated pair.
        let mut inst = TimedArrivals::new(vec![
            (1.0, unit(10.0)),
            (0.0, unit(1.0)),
            (1.0, unit(20.0)),
            (0.0, unit(2.0)),
        ]);
        assert_eq!(inst.model(TaskId(0)).time(1), 1.0);
        assert_eq!(inst.model(TaskId(1)).time(1), 2.0);
        assert_eq!(inst.model(TaskId(2)).time(1), 10.0);
        assert_eq!(inst.model(TaskId(3)).time(1), 20.0);
        assert_eq!(inst.arrivals(0.0), vec![TaskId(0), TaskId(1)]);
        assert_eq!(inst.arrivals(1.0), vec![TaskId(2), TaskId(3)]);
    }

    #[test]
    fn simultaneous_arrival_and_completion_orders_completion_first() {
        // Task 0 ends at t = 4; task 1 releases at t = 4. The freed
        // processor must be visible to the newly released task.
        let mut inst = TimedArrivals::new(vec![(0.0, unit(4.0)), (4.0, unit(1.0))]);
        let s = simulate_instance(
            &mut inst,
            &mut OneProcGreedy::default(),
            &SimOptions::new(1),
        )
        .unwrap();
        assert_eq!(s.placements[1].start, 4.0);
        assert_eq!(s.makespan, 5.0);
    }
}
