//! Chrome trace-event export.
//!
//! Renders a [`Schedule`] as the Trace Event Format consumed by
//! `chrome://tracing` and <https://ui.perfetto.dev>: one complete
//! (`"ph": "X"`) event per placement, with the processor id as the
//! thread lane when concrete processor ids were recorded. The JSON is
//! written by hand — the format is a flat array of small objects.

use std::fmt::Write as _;

use crate::Schedule;

/// Escape a string for a JSON string literal (quotes and backslashes;
/// control characters are replaced by spaces — task labels never
/// legitimately contain them).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if c.is_control() => out.push(' '),
            c => out.push(c),
        }
    }
    out
}

impl Schedule {
    /// Render as Chrome Trace Event JSON. `label` maps a task index to
    /// the event name. Times are interpreted as seconds and exported in
    /// microseconds, as the format expects.
    ///
    /// Each placement becomes one event per contiguous processor range
    /// (so wide tasks show as stacked lanes); without recorded
    /// processor ids, each placement gets its own lane.
    #[must_use]
    pub fn to_chrome_trace(&self, mut label: impl FnMut(usize) -> String) -> String {
        let mut out = String::from("[\n");
        let mut first = true;
        for (i, pl) in self.placements.iter().enumerate() {
            let name = json_escape(&label(pl.task.index()));
            let ts = pl.start * 1e6;
            let dur = pl.duration() * 1e6;
            let mut lanes: Vec<u32> = Vec::new();
            if pl.proc_ranges.is_empty() {
                lanes.push(u32::try_from(i % 1_000_000).expect("bounded"));
            } else {
                for &(lo, hi) in &pl.proc_ranges {
                    lanes.extend(lo..=hi);
                }
            }
            for lane in lanes {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    out,
                    "  {{\"name\": \"{name}\", \"ph\": \"X\", \"pid\": 0, \"tid\": {lane}, \
                     \"ts\": {ts:.3}, \"dur\": {dur:.3}, \
                     \"args\": {{\"task\": {}, \"procs\": {}}}}}",
                    pl.task.0, pl.procs
                );
            }
        }
        out.push_str("\n]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::ScheduleBuilder;
    use moldable_graph::TaskId;

    #[test]
    fn trace_has_one_event_per_processor_lane() {
        let mut sb = ScheduleBuilder::new(4);
        sb.place(TaskId(0), 0.0, 1.0, 2);
        let mut s = sb.build();
        s.placements[0].proc_ranges = vec![(0, 1)];
        let json = s.to_chrome_trace(|i| format!("task{i}"));
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 2); // 2 lanes
        assert!(json.contains("\"tid\": 0"));
        assert!(json.contains("\"tid\": 1"));
        assert!(json.contains("\"dur\": 1000000.000"));
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn trace_without_proc_ids_uses_index_lanes() {
        let mut sb = ScheduleBuilder::new(4);
        sb.place(TaskId(0), 0.0, 1.0, 2);
        sb.place(TaskId(1), 0.0, 2.0, 2);
        let json = sb.build().to_chrome_trace(|i| i.to_string());
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 2);
    }

    #[test]
    fn labels_are_escaped() {
        let mut sb = ScheduleBuilder::new(1);
        sb.place(TaskId(0), 0.0, 1.0, 1);
        let json = sb.build().to_chrome_trace(|_| "a\"b\\c\n".to_string());
        assert!(json.contains("a\\\"b\\\\c "));
    }

    #[test]
    fn empty_schedule_is_empty_array() {
        let json = ScheduleBuilder::new(1)
            .build()
            .to_chrome_trace(|_| String::new());
        assert_eq!(json.trim(), "[\n\n]".trim());
    }
}
