//! The data-oriented batched simulation engine.
//!
//! [`simulate_batched`] is a specialization of the general engine in
//! [`crate::engine`] for the overwhelmingly common case: a *static*
//! frozen [`TaskGraph`] driven by a scheduler that can accept releases
//! in batches. It produces bit-identical [`Schedule`]s — same
//! placement order, same start times, same makespan — while removing
//! the per-event overheads that dominate the general path on
//! million-task instances:
//!
//! * **Struct-of-arrays task state.** Status and indegree countdown
//!   live in flat arrays indexed by the frozen graph's dense CSR task
//!   ids (`Vec<u8>` / `Vec<u32>`), sized once up front — no `Option`
//!   wrappers, no growth checks in the loop, no [`crate::engine::Instance`]
//!   virtual dispatch between the event loop and the frontier.
//! * **Fat completion events.** Each heap event carries the completing
//!   task and its processor count inline, so retiring a completion
//!   never random-reads the placements array (64 bytes per entry on a
//!   10^6-task run — a guaranteed cache miss per event on the general
//!   path).
//! * **Batched event processing.** All completions at the current
//!   simulated time are drained as one batch, their processors freed
//!   together, their successors revealed into a single reused buffer,
//!   and the scheduler notified through *one*
//!   [`BatchScheduler::release_batch`] call per event instead of one
//!   virtual `release` per task. Same-instant starts are pushed back
//!   into the heap in submission order.
//!
//! The general engine remains the executable reference; the
//! differential suite in `tests/batched_engine_equivalence.rs` drives
//! both over every generator shape and the paper's adversarial
//! witnesses, demanding byte-equal schedules.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use moldable_graph::{TaskGraph, TaskId};

use crate::{Placement, ProcPool, Schedule, SimError, SimOptions};

/// One task start chosen by a [`BatchScheduler`].
///
/// Unlike the general engine — which re-derives a task's duration from
/// its speedup model at start time — the batched engine trusts the
/// scheduler's `dur`, because the scheduler already evaluated
/// `model.time(procs)` when it keyed the task into its ready queue.
/// `dur` **must** equal `model.time(procs)` bit-exactly for the
/// schedules of the two engines to coincide; since both sides compute
/// the same pure function on the same inputs, any scheduler that
/// forwards its own keying computation satisfies this for free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchStart {
    /// The task to start now.
    pub task: TaskId,
    /// Processors to hold for the whole execution.
    pub procs: u32,
    /// Execution time on `procs` processors: `model.time(procs)`.
    pub dur: f64,
    /// Simulated time at which the task was released to the scheduler.
    pub released: f64,
}

/// A scheduler driven by the batched engine.
///
/// The contract mirrors [`crate::Scheduler`], with the two hot methods
/// batched: every task is released exactly once, releases arrive in
/// the same order the general engine would have issued its per-task
/// `release` calls (completion order, then successor-edge order
/// within a completion), and at every decision point the engine calls
/// [`BatchScheduler::select_batch`] until it returns an empty batch.
pub trait BatchScheduler {
    /// Called once before the simulation starts.
    fn init(&mut self, p_total: u32) {
        let _ = p_total;
    }

    /// `tasks` became available at time `now` (in revelation order);
    /// their execution-time parameters are now known through `graph`.
    fn release_batch(&mut self, graph: &TaskGraph, now: f64, tasks: &[TaskId]);

    /// Append tasks to start *now* to `out`; the total `procs` of the
    /// appended batch must not exceed `free`. The buffer arrives
    /// empty; leave it empty to wait for the next event.
    fn select_batch(&mut self, now: f64, free: u32, out: &mut Vec<BatchStart>);
}

/// Task state column values (plain `u8`, not an enum, so the state
/// array is a byte per task and comparisons compile to immediate
/// loads).
const NOT_RELEASED: u8 = 0;
const AVAILABLE: u8 = 1;
const RUNNING: u8 = 2;
const DONE: u8 = 3;

/// Completion event. `idx` is the placement index, which equals the
/// start submission sequence (placements are pushed in submission
/// order), so ordering by `(time, idx)` reproduces the general
/// engine's `(time, seq)` tie-break exactly. Task and processor count
/// ride along so retiring the event touches no other array.
#[derive(Debug, Clone, Copy)]
struct BatchEvent {
    time: f64,
    idx: u32,
    task: TaskId,
    procs: u32,
}

impl PartialEq for BatchEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.idx == other.idx
    }
}
impl Eq for BatchEvent {}
impl PartialOrd for BatchEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for BatchEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.idx.cmp(&other.idx))
    }
}

/// Run a frozen [`TaskGraph`] to completion under a [`BatchScheduler`]
/// on `opts.p_total` processors, using the data-oriented batched hot
/// path. Observationally identical to [`crate::simulate`] driving the
/// equivalent per-task [`crate::Scheduler`].
///
/// # Errors
///
/// Returns the same [`SimError`]s as the general engine: a scheduler
/// that oversubscribes, starts an unavailable task, starts on zero
/// processors, or wedges the simulation is reported, never masked.
///
/// # Panics
///
/// Panics if the graph has more than `u32::MAX` placements (the frozen
/// id space already bounds tasks to `u32`).
pub fn simulate_batched<S: BatchScheduler + ?Sized>(
    graph: &TaskGraph,
    scheduler: &mut S,
    opts: &SimOptions,
) -> Result<Schedule, SimError> {
    let n = graph.n_tasks();
    let p_total = opts.p_total;
    scheduler.init(p_total);

    // SoA task state, sized once — ids are dense by construction.
    let mut state: Vec<u8> = vec![NOT_RELEASED; n];
    let mut indeg: Vec<u32> = (0..n)
        .map(|i| u32::try_from(graph.preds(TaskId(i as u32)).len()).expect("pred count fits u32"))
        .collect();

    let mut free = p_total;
    let mut pool = opts.record_proc_ids.then(|| ProcPool::new(p_total));
    let mut placements: Vec<Placement> = Vec::with_capacity(n);
    let mut heap: BinaryHeap<Reverse<BatchEvent>> =
        BinaryHeap::with_capacity((p_total as usize).min(n.max(1)));
    let mut time = 0.0f64;
    let mut completed = 0usize;

    // Scratch buffers reused across all events: the steady-state loop
    // allocates nothing.
    let mut newly: Vec<TaskId> = graph.sources().to_vec();
    let mut starts: Vec<BatchStart> = Vec::new();
    let mut batch: Vec<BatchEvent> = Vec::new();

    // Release the initial frontier (sources, in id order — exactly the
    // frozen Frontier's `initial`).
    for &t in &newly {
        state[t.index()] = AVAILABLE;
    }
    scheduler.release_batch(graph, 0.0, &newly);

    // Decision point: ask the scheduler until it passes, validating
    // and starting each submitted batch in order.
    macro_rules! decide {
        () => {
            loop {
                starts.clear();
                scheduler.select_batch(time, free, &mut starts);
                if starts.is_empty() {
                    break;
                }
                for s in starts.drain(..) {
                    let i = s.task.index();
                    if i >= n || state[i] != AVAILABLE {
                        return Err(SimError::NotAvailable(s.task));
                    }
                    if s.procs == 0 {
                        return Err(SimError::ZeroProcs(s.task));
                    }
                    if s.procs > free {
                        return Err(SimError::Oversubscribed {
                            task: s.task,
                            want: s.procs,
                            free,
                        });
                    }
                    let proc_ranges = match &mut pool {
                        Some(pool) => pool.alloc(s.procs).expect("pool tracks free count"),
                        None => Vec::new(),
                    };
                    free -= s.procs;
                    state[i] = RUNNING;
                    let idx = u32::try_from(placements.len()).expect("placements fit u32");
                    placements.push(Placement {
                        task: s.task,
                        start: time,
                        end: time + s.dur,
                        procs: s.procs,
                        proc_ranges,
                        released: s.released,
                    });
                    heap.push(Reverse(BatchEvent {
                        time: time + s.dur,
                        idx,
                        task: s.task,
                        procs: s.procs,
                    }));
                }
            }
        };
    }
    decide!();

    while let Some(&Reverse(head)) = heap.peek() {
        time = head.time;
        // Drain *all* completions at this instant as one batch — the
        // heap pops them in (time, idx) order, the general engine's
        // (time, seq) order.
        batch.clear();
        while let Some(&Reverse(ev)) = heap.peek() {
            if ev.time != time {
                break;
            }
            heap.pop();
            batch.push(ev);
        }
        // 1) free the processors of every completion in the batch
        for ev in &batch {
            free += ev.procs;
            if let Some(pool) = &mut pool {
                // Ranges live in the placements array only when id
                // recording is on; this cold path random-reads it.
                pool.release(&placements[ev.idx as usize].proc_ranges);
            }
            state[ev.task.index()] = DONE;
            completed += 1;
        }
        // 2) reveal the consequences, in completion order then
        //    successor-edge order — one concatenated batch.
        newly.clear();
        for ev in &batch {
            for &s in graph.succs(ev.task) {
                let r = &mut indeg[s.index()];
                debug_assert!(*r > 0, "{s} revealed before its predecessors");
                *r -= 1;
                if *r == 0 {
                    newly.push(s);
                }
            }
        }
        if !newly.is_empty() {
            for &t in &newly {
                debug_assert_eq!(state[t.index()], NOT_RELEASED);
                state[t.index()] = AVAILABLE;
            }
            scheduler.release_batch(graph, time, &newly);
        }
        // 3) new decision point
        decide!();

        if heap.is_empty() && completed < n {
            // Nothing running, tasks outstanding: the scheduler refused
            // available work (or a dependency cycle — impossible in a
            // frozen graph — left tasks unreleasable).
            let any_available = state.contains(&AVAILABLE);
            return Err(if any_available {
                SimError::Stuck { time, completed }
            } else {
                SimError::InconsistentInstance
            });
        }
    }

    if completed == 0 && n > 0 {
        // Nothing ever ran (the scheduler refused the initial frontier).
        return Err(SimError::Stuck {
            time: 0.0,
            completed: 0,
        });
    }

    Ok(Schedule {
        p_total,
        placements,
        makespan: time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use moldable_graph::GraphBuilder;
    use moldable_model::SpeedupModel;

    fn unit(w: f64) -> SpeedupModel {
        SpeedupModel::amdahl(w, 0.0).unwrap()
    }

    /// Greedy FIFO on a fixed allocation, batched form of the general
    /// engine's test scheduler.
    struct BatchFifo {
        alloc: u32,
        queue: std::collections::VecDeque<(TaskId, f64, f64)>,
    }

    impl BatchFifo {
        fn new(alloc: u32) -> Self {
            Self {
                alloc,
                queue: std::collections::VecDeque::new(),
            }
        }
    }

    impl BatchScheduler for BatchFifo {
        fn release_batch(&mut self, graph: &TaskGraph, now: f64, tasks: &[TaskId]) {
            for &t in tasks {
                self.queue
                    .push_back((t, graph.model(t).time(self.alloc), now));
            }
        }
        fn select_batch(&mut self, _now: f64, free: u32, out: &mut Vec<BatchStart>) {
            let mut free = free;
            while free >= self.alloc {
                match self.queue.pop_front() {
                    Some((task, dur, released)) => {
                        out.push(BatchStart {
                            task,
                            procs: self.alloc,
                            dur,
                            released,
                        });
                        free -= self.alloc;
                    }
                    None => break,
                }
            }
        }
    }

    #[test]
    fn chain_runs_serially() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit(2.0));
        let b = g.add_task(unit(3.0));
        let c = g.add_task(unit(1.0));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        let g = g.freeze();
        let s = simulate_batched(&g, &mut BatchFifo::new(1), &SimOptions::new(4)).unwrap();
        assert_eq!(s.makespan, 6.0);
        assert_eq!(s.placements.len(), 3);
        assert_eq!(s.placement(b).unwrap().start, 2.0);
        s.validate(&g).unwrap();
    }

    #[test]
    fn simultaneous_completions_release_together() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit(1.0));
        let b = g.add_task(unit(1.0));
        let c = g.add_task(unit(1.0));
        g.add_edge(a, c).unwrap();
        g.add_edge(b, c).unwrap();
        let g = g.freeze();
        let s = simulate_batched(&g, &mut BatchFifo::new(2), &SimOptions::new(4)).unwrap();
        assert_eq!(s.placement(c).unwrap().start, 0.5);
        assert_eq!(s.makespan, 1.0);
        s.validate(&g).unwrap();
    }

    #[test]
    fn release_times_are_recorded() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit(2.0));
        let b = g.add_task(unit(3.0));
        g.add_edge(a, b).unwrap();
        let g = g.freeze();
        let s = simulate_batched(&g, &mut BatchFifo::new(1), &SimOptions::new(2)).unwrap();
        assert_eq!(s.placement(a).unwrap().released, 0.0);
        assert_eq!(s.placement(b).unwrap().released, 2.0);
    }

    #[test]
    fn proc_ids_recorded_when_requested() {
        let mut g = GraphBuilder::new();
        g.add_task(unit(1.0));
        g.add_task(unit(1.0));
        let g = g.freeze();
        let opts = SimOptions::new(4).with_proc_ids();
        let s = simulate_batched(&g, &mut BatchFifo::new(2), &opts).unwrap();
        assert_eq!(s.placements[0].proc_ranges, vec![(0, 1)]);
        assert_eq!(s.placements[1].proc_ranges, vec![(2, 3)]);
    }

    #[test]
    fn oversubscription_is_detected() {
        struct Bad;
        impl BatchScheduler for Bad {
            fn release_batch(&mut self, _g: &TaskGraph, _n: f64, _t: &[TaskId]) {}
            fn select_batch(&mut self, _now: f64, _free: u32, out: &mut Vec<BatchStart>) {
                out.push(BatchStart {
                    task: TaskId(0),
                    procs: 99,
                    dur: 1.0,
                    released: 0.0,
                });
            }
        }
        let mut g = GraphBuilder::new();
        g.add_task(unit(1.0));
        let g = g.freeze();
        let err = simulate_batched(&g, &mut Bad, &SimOptions::new(4)).unwrap_err();
        assert!(matches!(
            err,
            SimError::Oversubscribed {
                want: 99,
                free: 4,
                ..
            }
        ));
    }

    #[test]
    fn unavailable_and_zero_proc_starts_are_detected() {
        struct Eager(u32);
        impl BatchScheduler for Eager {
            fn release_batch(&mut self, _g: &TaskGraph, _n: f64, _t: &[TaskId]) {}
            fn select_batch(&mut self, _now: f64, _free: u32, out: &mut Vec<BatchStart>) {
                out.push(BatchStart {
                    task: TaskId(1),
                    procs: self.0,
                    dur: 1.0,
                    released: 0.0,
                });
            }
        }
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit(1.0));
        let b = g.add_task(unit(1.0));
        g.add_edge(a, b).unwrap();
        let g = g.freeze();
        let err = simulate_batched(&g, &mut Eager(1), &SimOptions::new(4)).unwrap_err();
        assert_eq!(err, SimError::NotAvailable(TaskId(1)));

        struct Zero;
        impl BatchScheduler for Zero {
            fn release_batch(&mut self, _g: &TaskGraph, _n: f64, _t: &[TaskId]) {}
            fn select_batch(&mut self, _now: f64, _free: u32, out: &mut Vec<BatchStart>) {
                out.push(BatchStart {
                    task: TaskId(0),
                    procs: 0,
                    dur: 1.0,
                    released: 0.0,
                });
            }
        }
        let mut g = GraphBuilder::new();
        g.add_task(unit(1.0));
        let g = g.freeze();
        let err = simulate_batched(&g, &mut Zero, &SimOptions::new(4)).unwrap_err();
        assert_eq!(err, SimError::ZeroProcs(TaskId(0)));
    }

    #[test]
    fn lazy_scheduler_is_stuck() {
        struct Lazy;
        impl BatchScheduler for Lazy {
            fn release_batch(&mut self, _g: &TaskGraph, _n: f64, _t: &[TaskId]) {}
            fn select_batch(&mut self, _now: f64, _free: u32, _out: &mut Vec<BatchStart>) {}
        }
        let mut g = GraphBuilder::new();
        g.add_task(unit(1.0));
        let g = g.freeze();
        let err = simulate_batched(&g, &mut Lazy, &SimOptions::new(4)).unwrap_err();
        assert!(matches!(err, SimError::Stuck { .. }));
    }

    #[test]
    fn empty_graph_simulates_to_empty_schedule() {
        let g = TaskGraph::empty();
        let s = simulate_batched(&g, &mut BatchFifo::new(1), &SimOptions::new(2)).unwrap();
        assert_eq!(s.makespan, 0.0);
        assert!(s.placements.is_empty());
    }
}
