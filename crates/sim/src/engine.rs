//! The discrete-event simulation engine.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use moldable_graph::{Frontier, TaskGraph, TaskId};
use moldable_model::SpeedupModel;

use crate::{Placement, ProcPool, Schedule};

/// An online scheduling policy, driven by the engine.
///
/// The engine calls [`Scheduler::release`] exactly once per task, when
/// the task becomes *available* (all predecessors done) — this is the
/// only point where the scheduler learns the task exists and sees its
/// speedup model, matching the paper's online information model. At
/// every decision point (time 0 and each completion) the engine calls
/// [`Scheduler::select`] repeatedly until it returns an empty batch.
pub trait Scheduler {
    /// Called once before the simulation starts.
    fn init(&mut self, p_total: u32) {
        let _ = p_total;
    }

    /// A task has become available; its execution-time parameters are
    /// now known.
    fn release(&mut self, task: TaskId, model: &SpeedupModel);

    /// Choose tasks to start *now*. `free` is the number of currently
    /// idle processors; the total allocation of the returned batch must
    /// not exceed it. Return an empty batch to wait for the next event.
    fn select(&mut self, now: f64, free: u32) -> Vec<(TaskId, u32)>;

    /// [`Scheduler::select`], but appending the batch to a caller-owned
    /// buffer. The engine clears and reuses one buffer across all
    /// decision points, so schedulers overriding this run
    /// allocation-free at steady state; the default delegates to
    /// [`Scheduler::select`] so existing schedulers keep working
    /// unchanged. The buffer arrives empty; implementations must only
    /// append.
    fn select_into(&mut self, now: f64, free: u32, out: &mut Vec<(TaskId, u32)>) {
        out.extend(self.select(now, free));
    }
}

/// A source of tasks for the engine. The static case is a
/// [`TaskGraph`] (see [`GraphInstance`]); adaptive adversaries (the
/// paper's Section 5) implement this directly and may decide the
/// remaining structure *after* observing completions.
///
/// Release methods return bare [`TaskId`]s; the engine looks up the
/// speedup function through [`Instance::model`] whenever it needs one.
/// This keeps model *ownership* with the instance — the engine never
/// clones a `SpeedupModel` per task, which used to dominate release
/// cost on large instances (a clone bumps an `Arc` for table/formula
/// models and copies parameter structs for closed-form ones, per task).
pub trait Instance {
    /// Tasks available at time 0, in release order.
    fn initial(&mut self) -> Vec<TaskId>;

    /// `task` completed at simulated time `time`; return the tasks that
    /// become available as a result, in release order. Adaptive
    /// adversaries may use `time` to record their decision points.
    fn on_complete(&mut self, task: TaskId, time: f64) -> Vec<TaskId>;

    /// [`Instance::on_complete`], but appending the newly available
    /// tasks to a caller-owned buffer. The engine clears and reuses one
    /// scratch buffer across all completions, so instances overriding
    /// this (like [`GraphInstance`]) make the completion path
    /// allocation-free; the default delegates to
    /// [`Instance::on_complete`]. The buffer arrives empty;
    /// implementations must only append.
    fn on_complete_into(&mut self, task: TaskId, time: f64, out: &mut Vec<TaskId>) {
        out.extend(self.on_complete(task, time));
    }

    /// Have all tasks of the instance completed?
    fn is_done(&self) -> bool;

    /// The speedup model of a task this instance has released. Must be
    /// stable from the task's release to its completion.
    fn model(&self, task: TaskId) -> &SpeedupModel;

    /// Expected number of tasks this instance will release (0 when
    /// unknown). The engine pre-sizes its per-task state from this, so
    /// a good hint avoids re-allocation on million-task instances.
    fn size_hint(&self) -> usize {
        0
    }

    /// Next time at which tasks arrive *independently of completions*
    /// (release dates, the online-independent-tasks model of Ye et
    /// al.). `None` (the default) means all future releases are
    /// triggered by completions.
    fn next_arrival(&self) -> Option<f64> {
        None
    }

    /// Tasks arriving at exactly `time` (the engine calls this when the
    /// clock reaches the time previously returned by
    /// [`Instance::next_arrival`]).
    fn arrivals(&mut self, time: f64) -> Vec<TaskId> {
        let _ = time;
        Vec::new()
    }
}

/// Adapter: a static [`TaskGraph`] as an [`Instance`].
pub struct GraphInstance<'a> {
    graph: &'a TaskGraph,
    frontier: Frontier,
}

impl<'a> GraphInstance<'a> {
    /// Wrap a graph for simulation.
    #[must_use]
    pub fn new(graph: &'a TaskGraph) -> Self {
        Self {
            graph,
            frontier: Frontier::new(graph),
        }
    }
}

impl Instance for GraphInstance<'_> {
    fn initial(&mut self) -> Vec<TaskId> {
        self.frontier.initial(self.graph)
    }

    fn on_complete(&mut self, task: TaskId, _time: f64) -> Vec<TaskId> {
        self.frontier.complete(self.graph, task)
    }

    fn on_complete_into(&mut self, task: TaskId, _time: f64, out: &mut Vec<TaskId>) {
        self.frontier.complete_into(self.graph, task, out);
    }

    fn is_done(&self) -> bool {
        self.frontier.all_done()
    }

    fn model(&self, task: TaskId) -> &SpeedupModel {
        self.graph.model(task)
    }

    fn size_hint(&self) -> usize {
        self.graph.n_tasks()
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Platform size `P ≥ 1`.
    pub p_total: u32,
    /// Record concrete processor ids per placement (needed for Gantt
    /// rendering; adds O(fragments) bookkeeping per task).
    pub record_proc_ids: bool,
}

impl SimOptions {
    /// Options for a `P`-processor platform without id recording.
    #[must_use]
    pub fn new(p_total: u32) -> Self {
        assert!(p_total >= 1);
        Self {
            p_total,
            record_proc_ids: false,
        }
    }

    /// Enable concrete processor-id recording (for Gantt charts).
    #[must_use]
    pub fn with_proc_ids(mut self) -> Self {
        self.record_proc_ids = true;
        self
    }
}

/// Ways a simulation can fail. All of these indicate a *scheduler*
/// (or instance) bug, never an engine limitation; the engine refuses
/// to mask them.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The scheduler started a task the engine never released to it.
    NotAvailable(TaskId),
    /// The scheduler started a task with a zero-processor allocation.
    ZeroProcs(TaskId),
    /// The scheduler's batch exceeded the free processors.
    Oversubscribed {
        /// Offending task.
        task: TaskId,
        /// Processors the task asked for.
        want: u32,
        /// Processors actually free at that point of the batch.
        free: u32,
    },
    /// Available tasks exist but nothing is running and the scheduler
    /// selects nothing: the simulation can make no further progress.
    Stuck {
        /// Simulated time at which progress stopped.
        time: f64,
        /// Tasks completed so far.
        completed: usize,
    },
    /// The instance reported completion while the engine still believes
    /// tasks are outstanding (or vice versa).
    InconsistentInstance,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotAvailable(t) => write!(f, "scheduler started unavailable task {t}"),
            Self::ZeroProcs(t) => write!(f, "scheduler started {t} on zero processors"),
            Self::Oversubscribed { task, want, free } => {
                write!(
                    f,
                    "scheduler oversubscribed: {task} wants {want}, only {free} free"
                )
            }
            Self::Stuck { time, completed } => {
                write!(f, "no progress at t={time} after {completed} completions")
            }
            Self::InconsistentInstance => write!(f, "instance reported inconsistent state"),
        }
    }
}

impl std::error::Error for SimError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Available,
    Running,
    Done,
}

/// Completion event: ordered by time then submission sequence.
struct Event {
    time: f64,
    seq: u64,
    placement_idx: usize,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Simulate a static task graph under `scheduler`. Convenience wrapper
/// over [`simulate_instance`].
///
/// # Errors
///
/// Propagates any [`SimError`] the scheduler provokes.
pub fn simulate(
    graph: &TaskGraph,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
) -> Result<Schedule, SimError> {
    simulate_instance(&mut GraphInstance::new(graph), scheduler, opts)
}

/// Run an [`Instance`] (static or adaptive) to completion under
/// `scheduler` on `opts.p_total` processors.
///
/// Task ids issued by the instance are expected to be small dense
/// integers (they index internal vectors).
///
/// # Errors
///
/// Returns a [`SimError`] if the scheduler oversubscribes, starts an
/// unavailable task, or wedges the simulation.
pub fn simulate_instance(
    instance: &mut dyn Instance,
    scheduler: &mut dyn Scheduler,
    opts: &SimOptions,
) -> Result<Schedule, SimError> {
    let p_total = opts.p_total;
    scheduler.init(p_total);

    // Pre-size per-task state from the instance's hint; `ensure` only
    // grows (within reserved capacity for well-hinted instances).
    let hint = instance.size_hint();
    let mut status: Vec<Option<Status>> = Vec::with_capacity(hint);
    let mut released_at: Vec<f64> = Vec::with_capacity(hint);
    let ensure = |status: &mut Vec<Option<Status>>, released_at: &mut Vec<f64>, t: TaskId| {
        let need = t.index() + 1;
        if status.len() < need {
            status.resize(need, None);
            released_at.resize(need, 0.0);
        }
    };

    let mut free = p_total;
    let mut pool = opts.record_proc_ids.then(|| ProcPool::new(p_total));
    let mut placements: Vec<Placement> = Vec::with_capacity(hint);
    // At most one outstanding completion per busy processor.
    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::with_capacity(p_total as usize);
    let mut seq: u64 = 0;
    let mut time = 0.0f64;
    let mut completed = 0usize;

    // Release the initial frontier.
    for t in instance.initial() {
        ensure(&mut status, &mut released_at, t);
        scheduler.release(t, instance.model(t));
        status[t.index()] = Some(Status::Available);
        released_at[t.index()] = 0.0;
    }

    // Scratch buffers reused across every decision point and
    // completion: the steady-state loop allocates nothing.
    let mut picks: Vec<(TaskId, u32)> = Vec::new();
    let mut newly: Vec<TaskId> = Vec::new();

    // Decision loop: ask the scheduler until it passes.
    macro_rules! decide {
        () => {
            loop {
                picks.clear();
                scheduler.select_into(time, free, &mut picks);
                if picks.is_empty() {
                    break;
                }
                for (t, p) in picks.drain(..) {
                    if t.index() >= status.len() || status[t.index()] != Some(Status::Available) {
                        return Err(SimError::NotAvailable(t));
                    }
                    if p == 0 {
                        return Err(SimError::ZeroProcs(t));
                    }
                    if p > free {
                        return Err(SimError::Oversubscribed {
                            task: t,
                            want: p,
                            free,
                        });
                    }
                    let dur = instance.model(t).time(p);
                    let proc_ranges = match &mut pool {
                        Some(pool) => pool.alloc(p).expect("pool tracks free count"),
                        None => Vec::new(),
                    };
                    free -= p;
                    status[t.index()] = Some(Status::Running);
                    let placement_idx = placements.len();
                    placements.push(Placement {
                        task: t,
                        start: time,
                        end: time + dur,
                        procs: p,
                        proc_ranges,
                        released: released_at[t.index()],
                    });
                    heap.push(Reverse(Event {
                        time: time + dur,
                        seq,
                        placement_idx,
                    }));
                    seq += 1;
                }
            }
        };
    }

    // Timed arrivals already due at time 0 (release dates ≤ 0).
    macro_rules! drain_arrivals {
        () => {
            while let Some(a) = instance.next_arrival() {
                if a > time {
                    break;
                }
                for t in instance.arrivals(a) {
                    ensure(&mut status, &mut released_at, t);
                    scheduler.release(t, instance.model(t));
                    status[t.index()] = Some(Status::Available);
                    released_at[t.index()] = a;
                }
            }
        };
    }
    drain_arrivals!();
    decide!();

    // Completion batch, reused across decision points.
    let mut batch: Vec<usize> = Vec::new();
    loop {
        // Next event: a completion or a timed arrival, whichever first
        // (completions processed before arrivals at equal times).
        let next_completion = heap.peek().map(|Reverse(e)| e.time);
        let next_arrival = instance.next_arrival();
        let t_next = match (next_completion, next_arrival) {
            (None, None) => break,
            (Some(c), None) => c,
            (None, Some(a)) => a,
            (Some(c), Some(a)) => c.min(a),
        };
        time = t_next;
        // Gather all completions at exactly this time (in seq order —
        // BinaryHeap pops them in (time, seq) order).
        batch.clear();
        while let Some(Reverse(peek)) = heap.peek() {
            if peek.time == time {
                let Reverse(ev) = heap.pop().expect("peeked");
                batch.push(ev.placement_idx);
            } else {
                break;
            }
        }
        // 1) free the processors of every completion in the batch
        for &idx in &batch {
            let pl = &placements[idx];
            free += pl.procs;
            if let Some(pool) = &mut pool {
                pool.release(&pl.proc_ranges);
            }
            status[pl.task.index()] = Some(Status::Done);
            completed += 1;
        }
        // 2) reveal the consequences, in completion order
        for &idx in &batch {
            let task = placements[idx].task;
            newly.clear();
            instance.on_complete_into(task, time, &mut newly);
            for &t in &newly {
                ensure(&mut status, &mut released_at, t);
                scheduler.release(t, instance.model(t));
                status[t.index()] = Some(Status::Available);
                released_at[t.index()] = time;
            }
        }
        // 3) timed arrivals due now
        drain_arrivals!();
        // 4) new decision point
        decide!();

        if heap.is_empty() && instance.next_arrival().is_none() && !instance.is_done() {
            // Nothing running, nothing arriving, instance incomplete:
            // the scheduler refused available work (or the instance is
            // inconsistent).
            let any_available = status.contains(&Some(Status::Available));
            return Err(if any_available {
                SimError::Stuck { time, completed }
            } else {
                SimError::InconsistentInstance
            });
        }
    }

    if !instance.is_done() && completed > 0 {
        return Err(SimError::InconsistentInstance);
    }
    if completed == 0 && !instance.is_done() {
        // Nothing ever ran (e.g. scheduler refused the initial frontier).
        return Err(SimError::Stuck {
            time: 0.0,
            completed: 0,
        });
    }

    Ok(Schedule {
        p_total,
        placements,
        makespan: time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use moldable_graph::GraphBuilder;

    fn unit(w: f64) -> SpeedupModel {
        SpeedupModel::amdahl(w, 0.0).unwrap()
    }

    /// Greedy FIFO: start queued tasks on a fixed allocation while they fit.
    struct Fifo {
        alloc: u32,
        queue: std::collections::VecDeque<TaskId>,
    }

    impl Fifo {
        fn new(alloc: u32) -> Self {
            Self {
                alloc,
                queue: std::collections::VecDeque::new(),
            }
        }
    }

    impl Scheduler for Fifo {
        fn release(&mut self, task: TaskId, _m: &SpeedupModel) {
            self.queue.push_back(task);
        }
        fn select(&mut self, _now: f64, free: u32) -> Vec<(TaskId, u32)> {
            let mut out = Vec::new();
            let mut free = free;
            while free >= self.alloc {
                match self.queue.pop_front() {
                    Some(t) => {
                        out.push((t, self.alloc));
                        free -= self.alloc;
                    }
                    None => break,
                }
            }
            out
        }
    }

    #[test]
    fn chain_runs_serially() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit(2.0));
        let b = g.add_task(unit(3.0));
        let c = g.add_task(unit(1.0));
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        let g = g.freeze();
        let s = simulate(&g, &mut Fifo::new(1), &SimOptions::new(4)).unwrap();
        assert_eq!(s.makespan, 6.0);
        assert_eq!(s.placements.len(), 3);
        assert_eq!(s.placement(b).unwrap().start, 2.0);
        s.validate(&g).unwrap();
    }

    #[test]
    fn independents_run_in_parallel_up_to_capacity() {
        let mut g = GraphBuilder::new();
        for _ in 0..6 {
            g.add_task(unit(1.0));
        }
        let g = g.freeze();
        // P = 4, one proc each: 4 run at t=0, 2 at t=1.
        let s = simulate(&g, &mut Fifo::new(1), &SimOptions::new(4)).unwrap();
        assert_eq!(s.makespan, 2.0);
        assert_eq!(s.placements.iter().filter(|p| p.start == 0.0).count(), 4);
        s.validate(&g).unwrap();
    }

    #[test]
    fn simultaneous_completions_release_together() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit(1.0));
        let b = g.add_task(unit(1.0));
        let c = g.add_task(unit(1.0));
        g.add_edge(a, c).unwrap();
        g.add_edge(b, c).unwrap();
        let g = g.freeze();
        let s = simulate(&g, &mut Fifo::new(2), &SimOptions::new(4)).unwrap();
        // a and b run in parallel on 2 procs each over [0, 0.5);
        // c starts exactly when both complete.
        assert_eq!(s.placement(c).unwrap().start, 0.5);
        assert_eq!(s.makespan, 1.0);
        s.validate(&g).unwrap();
    }

    #[test]
    fn oversubscription_is_detected() {
        struct Bad;
        impl Scheduler for Bad {
            fn release(&mut self, _t: TaskId, _m: &SpeedupModel) {}
            fn select(&mut self, _now: f64, _free: u32) -> Vec<(TaskId, u32)> {
                vec![(TaskId(0), 99)]
            }
        }
        let mut g = GraphBuilder::new();
        g.add_task(unit(1.0));
        let g = g.freeze();
        let err = simulate(&g, &mut Bad, &SimOptions::new(4)).unwrap_err();
        assert!(matches!(
            err,
            SimError::Oversubscribed {
                want: 99,
                free: 4,
                ..
            }
        ));
    }

    #[test]
    fn unavailable_task_is_detected() {
        struct Eager;
        impl Scheduler for Eager {
            fn release(&mut self, _t: TaskId, _m: &SpeedupModel) {}
            fn select(&mut self, _now: f64, _free: u32) -> Vec<(TaskId, u32)> {
                vec![(TaskId(1), 1)] // task 1 not yet revealed
            }
        }
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit(1.0));
        let b = g.add_task(unit(1.0));
        g.add_edge(a, b).unwrap();
        let g = g.freeze();
        let err = simulate(&g, &mut Eager, &SimOptions::new(4)).unwrap_err();
        assert_eq!(err, SimError::NotAvailable(TaskId(1)));
    }

    #[test]
    fn zero_proc_start_is_detected() {
        struct Zero;
        impl Scheduler for Zero {
            fn release(&mut self, _t: TaskId, _m: &SpeedupModel) {}
            fn select(&mut self, _now: f64, _free: u32) -> Vec<(TaskId, u32)> {
                vec![(TaskId(0), 0)]
            }
        }
        let mut g = GraphBuilder::new();
        g.add_task(unit(1.0));
        let g = g.freeze();
        let err = simulate(&g, &mut Zero, &SimOptions::new(4)).unwrap_err();
        assert_eq!(err, SimError::ZeroProcs(TaskId(0)));
    }

    #[test]
    fn lazy_scheduler_is_stuck() {
        struct Lazy;
        impl Scheduler for Lazy {
            fn release(&mut self, _t: TaskId, _m: &SpeedupModel) {}
            fn select(&mut self, _now: f64, _free: u32) -> Vec<(TaskId, u32)> {
                Vec::new()
            }
        }
        let mut g = GraphBuilder::new();
        g.add_task(unit(1.0));
        let g = g.freeze();
        let err = simulate(&g, &mut Lazy, &SimOptions::new(4)).unwrap_err();
        assert!(matches!(err, SimError::Stuck { .. }));
    }

    #[test]
    fn proc_ids_recorded_when_requested() {
        let mut g = GraphBuilder::new();
        g.add_task(unit(1.0));
        g.add_task(unit(1.0));
        let g = g.freeze();
        let opts = SimOptions::new(4).with_proc_ids();
        let s = simulate(&g, &mut Fifo::new(2), &opts).unwrap();
        assert_eq!(s.placements[0].proc_ranges, vec![(0, 1)]);
        assert_eq!(s.placements[1].proc_ranges, vec![(2, 3)]);
    }

    #[test]
    fn release_times_are_recorded() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit(2.0));
        let b = g.add_task(unit(3.0));
        g.add_edge(a, b).unwrap();
        let g = g.freeze();
        let s = simulate(&g, &mut Fifo::new(1), &SimOptions::new(2)).unwrap();
        assert_eq!(s.placement(a).unwrap().released, 0.0);
        // b was revealed when a completed at t = 2 and started right away.
        assert_eq!(s.placement(b).unwrap().released, 2.0);
        assert_eq!(s.placement(b).unwrap().waiting(), 0.0);
        assert_eq!(s.placement(b).unwrap().flow(), 3.0);
    }

    #[test]
    fn moldable_allocation_changes_duration() {
        let mut g = GraphBuilder::new();
        g.add_task(unit(8.0));
        let g = g.freeze();
        let s = simulate(&g, &mut Fifo::new(4), &SimOptions::new(4)).unwrap();
        assert_eq!(s.makespan, 2.0); // 8 / 4
        let s = simulate(&g, &mut Fifo::new(2), &SimOptions::new(4)).unwrap();
        assert_eq!(s.makespan, 4.0); // 8 / 2
    }

    #[test]
    fn empty_graph_simulates_to_empty_schedule() {
        let g = TaskGraph::empty();
        let s = simulate(&g, &mut Fifo::new(1), &SimOptions::new(2)).unwrap();
        assert_eq!(s.makespan, 0.0);
        assert!(s.placements.is_empty());
    }

    #[test]
    fn utilization_of_saturated_schedule_is_one() {
        let mut g = GraphBuilder::new();
        for _ in 0..4 {
            g.add_task(unit(3.0));
        }
        let g = g.freeze();
        let s = simulate(&g, &mut Fifo::new(1), &SimOptions::new(4)).unwrap();
        assert!((s.utilization() - 1.0).abs() < 1e-12);
    }
}
