//! SVG Gantt-chart export — publication-quality rendering of a
//! schedule (the vector sibling of [`crate::gantt_ascii`]).
//!
//! Hand-written SVG: one `<rect>` per contiguous processor range of
//! each placement, colored by a task-index hash, with a `<title>`
//! tooltip carrying the exact numbers. No dependencies; the output
//! opens in any browser.

use std::fmt::Write as _;

use crate::Schedule;

/// Layout constants (pixels).
const ROW_H: f64 = 14.0;
const LEFT: f64 = 46.0;
const TOP: f64 = 8.0;
const BOTTOM: f64 = 26.0;

/// Minimal XML text escaping for labels embedded in `<title>`.
fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Golden-angle hue rotation: adjacent task indices get well-separated
/// hues.
fn hue(task_index: usize) -> f64 {
    #[allow(clippy::cast_precision_loss)]
    let i = task_index as f64;
    (i * 137.507_764).rem_euclid(360.0)
}

impl Schedule {
    /// Render the schedule as an SVG document of the given pixel
    /// `width` (height follows from `P`). Requires concrete processor
    /// ids (simulate with [`crate::SimOptions::with_proc_ids`] or call
    /// [`Schedule::assign_proc_ids`]); placements without ids are
    /// skipped.
    ///
    /// `label(task_index)` provides the tooltip name.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive and finite.
    #[must_use]
    pub fn to_svg(&self, width: f64, mut label: impl FnMut(usize) -> String) -> String {
        assert!(width.is_finite() && width > 0.0);
        let p = f64::from(self.p_total);
        let h = TOP + p * ROW_H + BOTTOM;
        let span = self.makespan.max(1e-300);
        let scale = (width - LEFT - 8.0) / span;
        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{h:.0}" font-family="sans-serif" font-size="9">"#
        );
        let _ = writeln!(
            out,
            r##"<rect x="0" y="0" width="{width:.0}" height="{h:.0}" fill="#ffffff"/>"##
        );
        // processor lane separators + labels
        for row in 0..self.p_total {
            let y = TOP + f64::from(self.p_total - 1 - row) * ROW_H;
            let _ = writeln!(
                out,
                r##"<text x="2" y="{:.1}" fill="#555">p{row}</text>"##,
                y + ROW_H - 4.0
            );
            let _ = writeln!(
                out,
                r##"<line x1="{LEFT}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#eee"/>"##,
                width - 8.0
            );
        }
        // placements
        for pl in &self.placements {
            if pl.proc_ranges.is_empty() {
                continue;
            }
            let x = LEFT + pl.start * scale;
            let w = (pl.duration() * scale).max(0.75);
            let fill = format!("hsl({:.1}, 65%, 62%)", hue(pl.task.index()));
            let name = xml_escape(&label(pl.task.index()));
            for &(lo, hi) in &pl.proc_ranges {
                // row `lo` draws at the bottom, like the paper's figures
                let y_top = TOP + f64::from(self.p_total - 1 - hi) * ROW_H;
                let rect_h = f64::from(hi - lo + 1) * ROW_H;
                let _ = writeln!(
                    out,
                    r##"<rect x="{x:.2}" y="{y_top:.2}" width="{w:.2}" height="{rect_h:.2}" fill="{fill}" stroke="#333" stroke-width="0.4"><title>{name}: [{:.4}, {:.4}) on {} procs</title></rect>"##,
                    pl.start, pl.end, pl.procs
                );
            }
        }
        // time axis
        let y_axis = TOP + p * ROW_H + 4.0;
        let _ = writeln!(
            out,
            r##"<line x1="{LEFT}" y1="{y_axis:.1}" x2="{:.1}" y2="{y_axis:.1}" stroke="#333"/>"##,
            width - 8.0
        );
        for k in 0..=4 {
            let t = span * f64::from(k) / 4.0;
            let x = LEFT + t * scale;
            let _ = writeln!(
                out,
                r##"<text x="{x:.1}" y="{:.1}" fill="#333">{t:.2}</text>"##,
                y_axis + 12.0
            );
        }
        out.push_str("</svg>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::ScheduleBuilder;
    use moldable_graph::TaskId;

    fn schedule() -> crate::Schedule {
        let mut sb = ScheduleBuilder::new(4);
        sb.place(TaskId(0), 0.0, 2.0, 2);
        sb.place(TaskId(1), 2.0, 1.0, 4);
        let mut s = sb.build();
        s.assign_proc_ids().unwrap();
        s
    }

    #[test]
    fn svg_contains_rects_per_range_and_tooltips() {
        let s = schedule();
        let svg = s.to_svg(400.0, |i| format!("task-{i}"));
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // 2 placements, each contiguous: 2 rects + background
        assert_eq!(svg.matches("<rect").count(), 3);
        assert!(svg.contains("<title>task-0: [0.0000, 2.0000) on 2 procs</title>"));
        assert!(svg.contains("<title>task-1"));
        // 4 processor lane labels
        for row in 0..4 {
            assert!(svg.contains(&format!(">p{row}<")));
        }
    }

    #[test]
    fn placements_without_proc_ids_are_skipped() {
        let mut sb = ScheduleBuilder::new(2);
        sb.place(TaskId(0), 0.0, 1.0, 1);
        let svg = sb.build().to_svg(300.0, |_| String::from("x"));
        assert_eq!(svg.matches("<rect").count(), 1); // background only
    }

    #[test]
    fn labels_are_xml_escaped() {
        let s = schedule();
        let svg = s.to_svg(300.0, |_| String::from("a<b&c"));
        assert!(svg.contains("a&lt;b&amp;c"));
        assert!(!svg.contains("<b&c"));
    }

    #[test]
    fn distinct_tasks_get_distinct_hues() {
        let a = super::hue(0);
        let b = super::hue(1);
        let c = super::hue(2);
        assert!((a - b).abs() > 30.0 && (b - c).abs() > 30.0);
        assert!((0.0..360.0).contains(&a));
    }
}
