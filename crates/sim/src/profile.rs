//! Utilization-interval profile — the `I₁ / I₂ / I₃` classification of
//! Section 4.2.
//!
//! The paper's analysis splits the schedule into intervals of constant
//! processor utilization and classifies them by utilization level
//! relative to `μP`:
//!
//! * `I₁`: `p(I) ∈ (0, ⌈μP⌉)`           (low utilization)
//! * `I₂`: `p(I) ∈ [⌈μP⌉, ⌈(1−μ)P⌉)`    (medium)
//! * `I₃`: `p(I) ∈ [⌈(1−μ)P⌉, P]`       (high)
//!
//! Lemma 3 bounds `μT₂ + (1−μ)T₃` by `α·A_min/P`; Lemma 4 bounds
//! `T₁/β + μT₂` by `C_min`. [`interval_profile`] measures `T₁, T₂, T₃`
//! on an actual schedule so the lemmas can be checked *empirically* in
//! tests and benches.

use crate::Schedule;

/// Measured durations of the three utilization categories.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalProfile {
    /// Total duration with `0 < p(I) < ⌈μP⌉`.
    pub t1: f64,
    /// Total duration with `⌈μP⌉ ≤ p(I) < ⌈(1−μ)P⌉`.
    pub t2: f64,
    /// Total duration with `p(I) ≥ ⌈(1−μ)P⌉`.
    pub t3: f64,
    /// Total duration with `p(I) = 0` strictly inside the schedule
    /// (possible only if the scheduler idles, which list scheduling
    /// never does while work is available).
    pub idle: f64,
}

impl IntervalProfile {
    /// `t1 + t2 + t3 + idle` — must equal the makespan.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.t1 + self.t2 + self.t3 + self.idle
    }
}

/// Measure `T₁, T₂, T₃` of a schedule for a given `μ` (Section 4.2).
///
/// # Panics
///
/// Panics if `mu` is outside `(0, 1)`.
#[must_use]
pub fn interval_profile(schedule: &Schedule, mu: f64) -> IntervalProfile {
    assert!(mu > 0.0 && mu < 1.0);
    let p_total = schedule.p_total;
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let lo = (mu * f64::from(p_total)).ceil() as u64; // ⌈μP⌉
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let hi = ((1.0 - mu) * f64::from(p_total)).ceil() as u64; // ⌈(1−μ)P⌉

    // Build the step function of utilization over time.
    let mut events: Vec<(f64, i64)> = Vec::with_capacity(schedule.placements.len() * 2);
    for pl in &schedule.placements {
        events.push((pl.start, i64::from(pl.procs)));
        events.push((pl.end, -i64::from(pl.procs)));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut profile = IntervalProfile {
        t1: 0.0,
        t2: 0.0,
        t3: 0.0,
        idle: 0.0,
    };
    let mut used: i64 = 0;
    let mut prev_t = 0.0f64;
    let mut i = 0;
    while i < events.len() {
        let t = events[i].0;
        let dt = t - prev_t;
        if dt > 0.0 {
            let u = u64::try_from(used.max(0)).expect("non-negative utilization");
            if u == 0 {
                profile.idle += dt;
            } else if u < lo {
                profile.t1 += dt;
            } else if u < hi {
                profile.t2 += dt;
            } else {
                profile.t3 += dt;
            }
        }
        while i < events.len() && events[i].0 == t {
            used += events[i].1;
            i += 1;
        }
        prev_t = t;
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScheduleBuilder;
    use moldable_graph::TaskId;

    #[test]
    fn profile_partitions_makespan() {
        // P = 10, μ = 0.3: ⌈μP⌉ = 3, ⌈(1−μ)P⌉ = 7.
        let mut sb = ScheduleBuilder::new(10);
        sb.place(TaskId(0), 0.0, 1.0, 2); // T1 region
        sb.place(TaskId(1), 1.0, 1.0, 5); // T2 region
        sb.place(TaskId(2), 2.0, 1.0, 9); // T3 region
        let s = sb.build();
        let p = interval_profile(&s, 0.3);
        assert_eq!(p.t1, 1.0);
        assert_eq!(p.t2, 1.0);
        assert_eq!(p.t3, 1.0);
        assert_eq!(p.idle, 0.0);
        assert!((p.total() - s.makespan).abs() < 1e-12);
    }

    #[test]
    fn boundary_utilization_classified_by_ceil() {
        // P = 10, μ = 0.25: ⌈μP⌉ = 3 — exactly 3 busy procs is T2.
        let mut sb = ScheduleBuilder::new(10);
        sb.place(TaskId(0), 0.0, 1.0, 3);
        let p = interval_profile(&sb.build(), 0.25);
        assert_eq!(p.t2, 1.0);
        assert_eq!(p.t1, 0.0);
        // exactly ⌈(1−μ)P⌉ = 8 busy procs is T3.
        let mut sb = ScheduleBuilder::new(10);
        sb.place(TaskId(0), 0.0, 1.0, 8);
        let p = interval_profile(&sb.build(), 0.25);
        assert_eq!(p.t3, 1.0);
    }

    #[test]
    fn idle_gap_measured() {
        let mut sb = ScheduleBuilder::new(4);
        sb.place(TaskId(0), 0.0, 1.0, 4);
        sb.place(TaskId(1), 2.0, 1.0, 4);
        let p = interval_profile(&sb.build(), 0.3);
        assert_eq!(p.idle, 1.0);
        assert_eq!(p.t3, 2.0);
    }

    #[test]
    fn overlapping_tasks_sum_utilization() {
        // Two 2-proc tasks overlapping on [0.5, 1.0): utilization 4 of 8.
        let mut sb = ScheduleBuilder::new(8);
        sb.place(TaskId(0), 0.0, 1.0, 2);
        sb.place(TaskId(1), 0.5, 1.0, 2);
        let p = interval_profile(&sb.build(), 0.4); // lo=4, hi=5
                                                    // [0,0.5): 2 busy → T1; [0.5,1): 4 busy → T2; [1,1.5): 2 busy → T1
        assert!((p.t1 - 1.0).abs() < 1e-12);
        assert!((p.t2 - 0.5).abs() < 1e-12);
    }
}
