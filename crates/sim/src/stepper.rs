//! Incremental, resumable form of the discrete-event engine.
//!
//! [`crate::simulate_instance`] runs an instance to completion in one
//! call; long-lived services (the multi-tenant session layer) instead
//! need to *step* a shared platform forward in bounded virtual-time
//! slices, observe completions as they materialize, and feed new
//! arrivals into the instance between steps. [`Stepper`] is that
//! form: it owns the instance and the scheduler, exposes
//! [`Stepper::advance_until`] to process every event up to a time
//! horizon, and reports each completion incrementally as an index
//! into its growing placement log.
//!
//! The event semantics are the one-shot engine's, verbatim: events
//! ordered by `(time, start-sequence)`, all completions at one
//! instant retired as a batch (processors freed first, consequences
//! revealed in completion order, timed arrivals drained, then a new
//! decision point), and the same [`SimError`] surface for scheduler
//! bugs. `tests` below pin the stepper bit-identical to
//! [`crate::simulate_instance`] — same placements, same makespan —
//! whether advanced in one jump or in many small slices.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use moldable_graph::TaskId;

use crate::{Instance, Placement, ProcPool, Schedule, Scheduler, SimError, SimOptions};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Available,
    Running,
    Done,
}

/// Completion event: ordered by time then submission sequence —
/// identical to the one-shot engine's tie-break.
struct Event {
    time: f64,
    seq: u64,
    placement_idx: usize,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// An in-flight simulation that can be advanced in time slices.
///
/// Unlike the one-shot entry points this owns both the instance and
/// the scheduler, so a service can hold one `Stepper` for the
/// lifetime of a shared platform and mutate the instance between
/// advances (submitting new work) through [`Stepper::instance_mut`].
///
/// Mutation contract: between advances the caller may only *add*
/// future work — arrivals at or after [`Stepper::now`] — and register
/// state for tasks the engine has not yet seen. Rewriting the past
/// (arrivals before `now`, models of released tasks) breaks the
/// engine invariants exactly as it would break the one-shot engine.
pub struct Stepper<I, S> {
    instance: I,
    scheduler: S,
    p_total: u32,
    free: u32,
    pool: Option<ProcPool>,
    placements: Vec<Placement>,
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
    time: f64,
    completed: usize,
    status: Vec<Option<Status>>,
    released_at: Vec<f64>,
    picks: Vec<(TaskId, u32)>,
    newly: Vec<TaskId>,
    batch: Vec<usize>,
    primed: bool,
    error: Option<SimError>,
}

impl<I: Instance, S: Scheduler> Stepper<I, S> {
    /// Wrap `instance` and `scheduler` for incremental simulation on
    /// `opts.p_total` processors. Calls `scheduler.init`; the initial
    /// frontier is released lazily on the first advance, so arrivals
    /// registered before the first [`Stepper::advance_until`] are
    /// seen exactly as the one-shot engine would see them.
    pub fn new(instance: I, mut scheduler: S, opts: &SimOptions) -> Self {
        let p_total = opts.p_total;
        scheduler.init(p_total);
        let hint = instance.size_hint();
        Self {
            instance,
            scheduler,
            p_total,
            free: p_total,
            pool: opts.record_proc_ids.then(|| ProcPool::new(p_total)),
            placements: Vec::with_capacity(hint),
            heap: BinaryHeap::with_capacity(p_total as usize),
            seq: 0,
            time: 0.0,
            completed: 0,
            status: Vec::with_capacity(hint),
            released_at: Vec::with_capacity(hint),
            picks: Vec::new(),
            newly: Vec::new(),
            batch: Vec::new(),
            primed: false,
            error: None,
        }
    }

    /// Time of the last processed event (0 before any event).
    #[must_use]
    pub fn now(&self) -> f64 {
        self.time
    }

    /// Currently idle processors.
    #[must_use]
    pub fn free(&self) -> u32 {
        self.free
    }

    /// Platform size.
    #[must_use]
    pub fn p_total(&self) -> u32 {
        self.p_total
    }

    /// Tasks completed so far.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// The growing placement log, in start order. Completion indices
    /// reported by [`Stepper::advance_until`] index into this slice.
    #[must_use]
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Shared view of the instance.
    pub fn instance(&self) -> &I {
        &self.instance
    }

    /// Mutable access to the instance, for feeding future work in
    /// between advances (see the mutation contract on [`Stepper`]).
    pub fn instance_mut(&mut self) -> &mut I {
        &mut self.instance
    }

    /// Shared view of the scheduler.
    pub fn scheduler(&self) -> &S {
        &self.scheduler
    }

    /// Mutable access to the scheduler, for registering state about
    /// tasks the engine has not yet released (see [`Stepper`]).
    pub fn scheduler_mut(&mut self) -> &mut S {
        &mut self.scheduler
    }

    /// Nothing running and no timed arrival pending: the platform is
    /// fully idle until new work is fed in.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.heap.is_empty() && self.instance.next_arrival().is_none()
    }

    /// Process every event with time `<= until`, appending the
    /// placement index of each completion to `completions` in
    /// retirement order. `f64::INFINITY` runs to quiescence.
    ///
    /// # Errors
    ///
    /// The same [`SimError`]s as the one-shot engine. An error
    /// poisons the stepper: every later call returns the same error.
    pub fn advance_until(
        &mut self,
        until: f64,
        completions: &mut Vec<usize>,
    ) -> Result<(), SimError> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        match self.advance_inner(until, completions) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.error = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Run the remaining events to quiescence and return the final
    /// [`Schedule`], with the one-shot engine's end-of-run
    /// consistency checks.
    ///
    /// # Errors
    ///
    /// Any pending or provoked [`SimError`].
    pub fn finish(mut self) -> Result<Schedule, SimError> {
        let mut sink = Vec::new();
        self.advance_until(f64::INFINITY, &mut sink)?;
        if !self.instance.is_done() && self.completed > 0 {
            return Err(SimError::InconsistentInstance);
        }
        if self.completed == 0 && !self.instance.is_done() {
            return Err(SimError::Stuck {
                time: 0.0,
                completed: 0,
            });
        }
        Ok(Schedule {
            p_total: self.p_total,
            placements: self.placements,
            makespan: self.time,
        })
    }

    fn ensure(&mut self, t: TaskId) {
        let need = t.index() + 1;
        if self.status.len() < need {
            self.status.resize(need, None);
            self.released_at.resize(need, 0.0);
        }
    }

    fn release(&mut self, t: TaskId, at: f64) {
        self.ensure(t);
        self.scheduler.release(t, self.instance.model(t));
        self.status[t.index()] = Some(Status::Available);
        self.released_at[t.index()] = at;
    }

    fn drain_arrivals(&mut self) {
        while let Some(a) = self.instance.next_arrival() {
            if a > self.time {
                break;
            }
            let mut arrived = std::mem::take(&mut self.newly);
            arrived.clear();
            arrived.extend(self.instance.arrivals(a));
            for &t in &arrived {
                self.release(t, a);
            }
            self.newly = arrived;
        }
    }

    fn decide(&mut self) -> Result<(), SimError> {
        loop {
            let mut picks = std::mem::take(&mut self.picks);
            picks.clear();
            self.scheduler.select_into(self.time, self.free, &mut picks);
            if picks.is_empty() {
                self.picks = picks;
                return Ok(());
            }
            for (t, p) in picks.drain(..) {
                if t.index() >= self.status.len()
                    || self.status[t.index()] != Some(Status::Available)
                {
                    return Err(SimError::NotAvailable(t));
                }
                if p == 0 {
                    return Err(SimError::ZeroProcs(t));
                }
                if p > self.free {
                    return Err(SimError::Oversubscribed {
                        task: t,
                        want: p,
                        free: self.free,
                    });
                }
                let dur = self.instance.model(t).time(p);
                let proc_ranges = match &mut self.pool {
                    Some(pool) => pool.alloc(p).expect("pool tracks free count"),
                    None => Vec::new(),
                };
                self.free -= p;
                self.status[t.index()] = Some(Status::Running);
                let placement_idx = self.placements.len();
                self.placements.push(Placement {
                    task: t,
                    start: self.time,
                    end: self.time + dur,
                    procs: p,
                    proc_ranges,
                    released: self.released_at[t.index()],
                });
                self.heap.push(Reverse(Event {
                    time: self.time + dur,
                    seq: self.seq,
                    placement_idx,
                }));
                self.seq += 1;
            }
            self.picks = picks;
        }
    }

    /// The engine's wedge check: available work exists, nothing runs,
    /// nothing arrives, and the scheduler passes.
    fn check_progress(&self) -> Result<(), SimError> {
        if self.heap.is_empty()
            && self.instance.next_arrival().is_none()
            && !self.instance.is_done()
        {
            let any_available = self.status.contains(&Some(Status::Available));
            return Err(if any_available {
                SimError::Stuck {
                    time: self.time,
                    completed: self.completed,
                }
            } else {
                SimError::InconsistentInstance
            });
        }
        Ok(())
    }

    fn advance_inner(&mut self, until: f64, completions: &mut Vec<usize>) -> Result<(), SimError> {
        if !self.primed {
            self.primed = true;
            let initial = self.instance.initial();
            for t in initial {
                self.release(t, 0.0);
            }
            self.drain_arrivals();
            self.decide()?;
            self.check_progress()?;
        }
        loop {
            let next_completion = self.heap.peek().map(|Reverse(e)| e.time);
            let next_arrival = self.instance.next_arrival();
            let t_next = match (next_completion, next_arrival) {
                (None, None) => break,
                (Some(c), None) => c,
                (None, Some(a)) => a,
                (Some(c), Some(a)) => c.min(a),
            };
            if t_next > until {
                break;
            }
            self.time = t_next;
            self.batch.clear();
            while let Some(Reverse(peek)) = self.heap.peek() {
                if peek.time == self.time {
                    let Reverse(ev) = self.heap.pop().expect("peeked");
                    self.batch.push(ev.placement_idx);
                } else {
                    break;
                }
            }
            // 1) free the processors of every completion in the batch
            for i in 0..self.batch.len() {
                let idx = self.batch[i];
                let pl = &self.placements[idx];
                self.free += pl.procs;
                let task = pl.task;
                if let Some(pool) = &mut self.pool {
                    let ranges = std::mem::take(&mut self.placements[idx].proc_ranges);
                    pool.release(&ranges);
                    self.placements[idx].proc_ranges = ranges;
                }
                self.status[task.index()] = Some(Status::Done);
                self.completed += 1;
            }
            // 2) reveal the consequences, in completion order
            for i in 0..self.batch.len() {
                let idx = self.batch[i];
                let task = self.placements[idx].task;
                let mut newly = std::mem::take(&mut self.newly);
                newly.clear();
                self.instance.on_complete_into(task, self.time, &mut newly);
                for &t in &newly {
                    self.release(t, self.time);
                }
                self.newly = newly;
            }
            completions.extend_from_slice(&self.batch);
            // 3) timed arrivals due now
            self.drain_arrivals();
            // 4) new decision point
            self.decide()?;
            self.check_progress()?;
        }
        Ok(())
    }
}

impl<I, S> std::fmt::Debug for Stepper<I, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stepper")
            .field("p_total", &self.p_total)
            .field("free", &self.free)
            .field("now", &self.time)
            .field("completed", &self.completed)
            .field("running", &self.heap.len())
            .field("poisoned", &self.error.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_instance, GraphInstance, TimedArrivals};
    use moldable_graph::gen;
    use moldable_model::{ModelClass, SpeedupModel};

    fn unit(w: f64) -> SpeedupModel {
        SpeedupModel::amdahl(w, 0.0).unwrap()
    }

    /// Greedy FIFO on a fixed allocation (mirror of the engine tests).
    struct Fifo {
        alloc: u32,
        queue: std::collections::VecDeque<TaskId>,
    }

    impl Fifo {
        fn new(alloc: u32) -> Self {
            Self {
                alloc,
                queue: std::collections::VecDeque::new(),
            }
        }
    }

    impl Scheduler for Fifo {
        fn release(&mut self, task: TaskId, _m: &SpeedupModel) {
            self.queue.push_back(task);
        }
        fn select(&mut self, _now: f64, free: u32) -> Vec<(TaskId, u32)> {
            let mut out = Vec::new();
            let mut free = free;
            while free >= self.alloc {
                match self.queue.pop_front() {
                    Some(t) => {
                        out.push((t, self.alloc));
                        free -= self.alloc;
                    }
                    None => break,
                }
            }
            out
        }
    }

    fn fingerprint(placements: &[Placement]) -> Vec<(u32, u64, u64, u32, u64)> {
        placements
            .iter()
            .map(|pl| {
                (
                    pl.task.0,
                    pl.start.to_bits(),
                    pl.end.to_bits(),
                    pl.procs,
                    pl.released.to_bits(),
                )
            })
            .collect()
    }

    #[test]
    fn stepper_matches_one_shot_engine_on_generated_graphs() {
        for (shape, size, p) in [
            ("cholesky", 8u32, 16u32),
            ("layered", 10, 24),
            ("fft", 5, 8),
            ("fork-join", 40, 12),
        ] {
            let g = gen::by_name(shape, size, ModelClass::Amdahl, p, 7).unwrap();
            let opts = SimOptions::new(p);
            let reference =
                simulate_instance(&mut GraphInstance::new(&g), &mut Fifo::new(2), &opts).unwrap();
            let stepper = Stepper::new(GraphInstance::new(&g), Fifo::new(2), &opts);
            let got = stepper.finish().unwrap();
            assert_eq!(
                fingerprint(&got.placements),
                fingerprint(&reference.placements),
                "{shape}"
            );
            assert_eq!(got.makespan.to_bits(), reference.makespan.to_bits());
        }
    }

    #[test]
    fn sliced_advances_are_bit_identical_to_one_jump() {
        let g = gen::by_name("layered", 12, ModelClass::General, 16, 3).unwrap();
        let opts = SimOptions::new(16);
        let one = Stepper::new(GraphInstance::new(&g), Fifo::new(1), &opts)
            .finish()
            .unwrap();
        let mut sliced = Stepper::new(GraphInstance::new(&g), Fifo::new(1), &opts);
        let mut seen = Vec::new();
        let mut t = 0.0;
        while !(sliced.is_idle() && sliced.now() > 0.0) {
            sliced.advance_until(t, &mut seen).unwrap();
            if sliced.is_idle() && sliced.instance().is_done() {
                break;
            }
            t += 0.37; // deliberately lands between event times
            assert!(t < 1e6, "runaway");
        }
        assert_eq!(
            seen.len(),
            one.placements.len(),
            "every completion reported"
        );
        assert_eq!(
            fingerprint(sliced.placements()),
            fingerprint(&one.placements)
        );
        // Completion indices arrive in retirement order: end times are
        // non-decreasing along the reported sequence.
        let ends: Vec<f64> = seen.iter().map(|&i| sliced.placements()[i].end).collect();
        assert!(ends.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn timed_arrivals_match_one_shot_engine() {
        let releases: Vec<(f64, SpeedupModel)> = (0..40)
            .map(|i| (f64::from(i % 7) * 0.5, unit(1.0 + f64::from(i % 3))))
            .collect();
        let opts = SimOptions::new(4);
        let reference = simulate_instance(
            &mut TimedArrivals::new(releases.clone()),
            &mut Fifo::new(1),
            &opts,
        )
        .unwrap();
        let got = Stepper::new(TimedArrivals::new(releases), Fifo::new(1), &opts)
            .finish()
            .unwrap();
        assert_eq!(
            fingerprint(&got.placements),
            fingerprint(&reference.placements)
        );
        assert_eq!(got.makespan.to_bits(), reference.makespan.to_bits());
    }

    #[test]
    fn advance_until_is_inclusive_of_the_horizon() {
        let mut g = moldable_graph::GraphBuilder::new();
        g.add_task(unit(2.0));
        g.add_task(unit(2.0));
        let g = g.freeze();
        let mut st = Stepper::new(GraphInstance::new(&g), Fifo::new(1), &SimOptions::new(2));
        let mut done = Vec::new();
        st.advance_until(1.9, &mut done).unwrap();
        assert!(done.is_empty(), "completions at t=2 are beyond 1.9");
        st.advance_until(2.0, &mut done).unwrap();
        assert_eq!(done.len(), 2, "t=2 completions retire at horizon 2.0");
        assert_eq!(st.now(), 2.0);
        assert_eq!(st.free(), 2);
    }

    #[test]
    fn work_fed_between_advances_is_scheduled() {
        // An initially empty arrivals stream is quiescent, not an
        // error; work appended later (at or after `now`) runs.
        let opts = SimOptions::new(2);
        let mut st = Stepper::new(TimedArrivals::new(Vec::new()), Fifo::new(1), &opts);
        let mut done = Vec::new();
        st.advance_until(10.0, &mut done).unwrap();
        assert!(done.is_empty());
        assert!(st.is_idle());
        *st.instance_mut() = TimedArrivals::new(vec![(3.0, unit(2.0)), (3.0, unit(1.0))]);
        st.advance_until(3.5, &mut done).unwrap();
        assert!(done.is_empty(), "both still running at 3.5");
        st.advance_until(10.0, &mut done).unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(st.placements()[0].start, 3.0);
        assert_eq!(st.placements()[1].start, 3.0);
        assert_eq!(st.now(), 5.0);
    }

    #[test]
    fn errors_poison_the_stepper() {
        struct Lazy;
        impl Scheduler for Lazy {
            fn release(&mut self, _t: TaskId, _m: &SpeedupModel) {}
            fn select(&mut self, _now: f64, _free: u32) -> Vec<(TaskId, u32)> {
                Vec::new()
            }
        }
        let mut g = moldable_graph::GraphBuilder::new();
        g.add_task(unit(1.0));
        let g = g.freeze();
        let mut st = Stepper::new(GraphInstance::new(&g), Lazy, &SimOptions::new(2));
        let mut done = Vec::new();
        let e1 = st.advance_until(1.0, &mut done).unwrap_err();
        assert!(matches!(e1, SimError::Stuck { .. }));
        let e2 = st.advance_until(2.0, &mut done).unwrap_err();
        assert_eq!(e1, e2, "poisoned stepper repeats its error");
    }

    #[test]
    fn proc_ids_are_recorded_and_recycled() {
        let mut g = moldable_graph::GraphBuilder::new();
        let a = g.add_task(unit(1.0));
        let b = g.add_task(unit(1.0));
        g.add_edge(a, b).unwrap();
        let g = g.freeze();
        let opts = SimOptions::new(2).with_proc_ids();
        let s = Stepper::new(GraphInstance::new(&g), Fifo::new(2), &opts)
            .finish()
            .unwrap();
        assert_eq!(s.placements[0].proc_ranges, vec![(0, 1)]);
        assert_eq!(s.placements[1].proc_ranges, vec![(0, 1)], "procs recycled");
    }
}
