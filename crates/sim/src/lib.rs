//! Exact discrete-event simulation of a platform with `P` identical
//! processors executing a moldable task graph.
//!
//! This is the "testbed" substrate of the reproduction: the paper's
//! platform model (Section 3.1) is abstract — `P` identical processors,
//! non-preemptive moldable tasks, no data-transfer cost — so an exact
//! event-driven simulator reproduces it with no approximation.
//!
//! The key abstraction is the [`Scheduler`] trait: the engine owns the
//! task graph and *reveals* tasks to the scheduler only when all their
//! predecessors have completed (the online information model), then
//! asks the scheduler which available tasks to start whenever
//! processors free up. The engine never leaks unrevealed structure.
//!
//! For adaptive lower bounds (the paper's Section 5 adversary decides
//! the graph *in response to* the algorithm's behaviour), the engine
//! also runs against the more general [`Instance`] trait, of which a
//! [`moldable_graph::TaskGraph`] is the static special case.
//!
//! # Example
//!
//! ```
//! use moldable_graph::{GraphBuilder, TaskId};
//! use moldable_model::SpeedupModel;
//! use moldable_sim::{simulate, Scheduler, SimOptions};
//!
//! /// A toy scheduler: run every available task on one processor.
//! #[derive(Default)]
//! struct OneProc { queue: Vec<TaskId> }
//! impl Scheduler for OneProc {
//!     fn release(&mut self, task: TaskId, _m: &SpeedupModel) {
//!         self.queue.push(task);
//!     }
//!     fn select(&mut self, _now: f64, free: u32) -> Vec<(TaskId, u32)> {
//!         let take = (free as usize).min(self.queue.len());
//!         self.queue.drain(..take).map(|t| (t, 1)).collect()
//!     }
//! }
//!
//! let mut g = GraphBuilder::new();
//! let a = g.add_task(SpeedupModel::amdahl(2.0, 0.0).unwrap());
//! let b = g.add_task(SpeedupModel::amdahl(3.0, 0.0).unwrap());
//! g.add_edge(a, b).unwrap();
//! let g = g.freeze();
//!
//! let schedule = simulate(&g, &mut OneProc::default(), &SimOptions::new(4)).unwrap();
//! assert_eq!(schedule.makespan, 5.0);
//! schedule.validate(&g).unwrap();
//! ```

#![forbid(unsafe_code)]

mod arrivals;
mod batched;
mod engine;
mod gantt;
mod procmap;
mod profile;
mod schedule;
mod stepper;
mod svg;
mod trace;
mod validate;

pub use arrivals::TimedArrivals;
pub use batched::{simulate_batched, BatchScheduler, BatchStart};
pub use engine::{
    simulate, simulate_instance, GraphInstance, Instance, Scheduler, SimError, SimOptions,
};
pub use gantt::gantt_ascii;
pub use procmap::ProcPool;
pub use profile::{interval_profile, IntervalProfile};
pub use schedule::{Placement, Schedule, ScheduleBuilder};
pub use stepper::Stepper;
pub use validate::ValidationError;
