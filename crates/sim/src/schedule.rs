//! Recorded schedules: what ran when, on how many processors.

use moldable_graph::TaskId;

/// One task's execution record.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// The task.
    pub task: TaskId,
    /// Start time.
    pub start: f64,
    /// Completion time (`start + t(procs)`).
    pub end: f64,
    /// Number of processors held for the whole `[start, end)` interval.
    pub procs: u32,
    /// Concrete processor ids as disjoint `[lo, hi]` ranges, if the
    /// simulation recorded them (used for Gantt rendering). Empty when
    /// not recorded.
    pub proc_ranges: Vec<(u32, u32)>,
    /// Time the task became available to the scheduler (its release).
    /// Hand-built schedules default this to `start`.
    pub released: f64,
}

impl Placement {
    /// Duration of the placement.
    #[must_use]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Time spent waiting in the queue: `start − released`.
    #[must_use]
    pub fn waiting(&self) -> f64 {
        self.start - self.released
    }

    /// Flow time (response time): `end − released`.
    #[must_use]
    pub fn flow(&self) -> f64 {
        self.end - self.released
    }

    /// Area consumed: `procs × duration`.
    #[must_use]
    pub fn area(&self) -> f64 {
        f64::from(self.procs) * self.duration()
    }
}

/// A complete schedule of a task graph on `p_total` processors.
///
/// Produced by the simulator, or hand-built with [`ScheduleBuilder`]
/// (the paper's proofs describe explicit near-optimal schedules which
/// we reconstruct and validate).
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// Platform size.
    pub p_total: u32,
    /// Placements in start-time order (ties broken by insertion).
    pub placements: Vec<Placement>,
    /// Overall completion time; 0 for an empty schedule.
    pub makespan: f64,
}

impl Schedule {
    /// Placement of a given task, if present.
    #[must_use]
    pub fn placement(&self, task: TaskId) -> Option<&Placement> {
        self.placements.iter().find(|p| p.task == task)
    }

    /// Total processor-time consumed by all placements.
    #[must_use]
    pub fn total_area(&self) -> f64 {
        self.placements.iter().map(Placement::area).sum()
    }

    /// Mean waiting time over all placements (0 for an empty schedule).
    #[must_use]
    pub fn mean_waiting(&self) -> f64 {
        if self.placements.is_empty() {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let n = self.placements.len() as f64;
        self.placements.iter().map(Placement::waiting).sum::<f64>() / n
    }

    /// Mean flow time (completion − release) over all placements.
    #[must_use]
    pub fn mean_flow(&self) -> f64 {
        if self.placements.is_empty() {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let n = self.placements.len() as f64;
        self.placements.iter().map(Placement::flow).sum::<f64>() / n
    }

    /// Average platform utilization over `[0, makespan]` — the quantity
    /// the Feldmann-style analyses keep above a threshold.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0.0 {
            return 0.0;
        }
        self.total_area() / (f64::from(self.p_total) * self.makespan)
    }

    /// Assign concrete processor ids to every placement by replaying
    /// the schedule through a [`crate::ProcPool`] (lowest free ids
    /// first, ends processed before starts at equal times). Used to
    /// render hand-built proof schedules as Gantt charts.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ValidationError::CapacityExceeded`] if the
    /// schedule oversubscribes the platform.
    pub fn assign_proc_ids(&mut self) -> Result<(), crate::ValidationError> {
        let mut pool = crate::ProcPool::new(self.p_total);
        // (time, is_start, placement index); ends sort before starts.
        let mut events: Vec<(f64, bool, usize)> = Vec::with_capacity(self.placements.len() * 2);
        for (i, pl) in self.placements.iter().enumerate() {
            events.push((pl.start, true, i));
            events.push((pl.end, false, i));
        }
        events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        // Events within tol of each other form one batch with ends
        // processed before starts — otherwise a start that is one ulp
        // below the preceding end would double-book processors
        // (back-to-back placements computed as `i/P + 1/P` vs
        // `(i+1)/P` differ by rounding).
        let tol = 1e-9 * self.makespan.max(1.0);
        let mut i = 0;
        while i < events.len() {
            let t0 = events[i].0;
            let mut j = i;
            while j < events.len() && events[j].0 - t0 <= tol {
                j += 1;
            }
            let mut batch: Vec<(f64, bool, usize)> = events[i..j].to_vec();
            batch.sort_by_key(|a| a.1); // false (ends) first
            for (time, is_start, idx) in batch {
                if is_start {
                    let procs = self.placements[idx].procs;
                    match pool.alloc(procs) {
                        Some(ranges) => self.placements[idx].proc_ranges = ranges,
                        None => {
                            return Err(crate::ValidationError::CapacityExceeded {
                                time,
                                used: u64::from(self.p_total - pool.n_free()) + u64::from(procs),
                            })
                        }
                    }
                } else {
                    pool.release(&self.placements[idx].proc_ranges);
                }
            }
            i = j;
        }
        Ok(())
    }

    /// CSV export: `task,start,end,procs` (header included).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("task,start,end,procs\n");
        for p in &self.placements {
            out.push_str(&format!("{},{},{},{}\n", p.task.0, p.start, p.end, p.procs));
        }
        out
    }
}

/// Incremental construction of hand-written schedules.
#[derive(Debug, Default)]
pub struct ScheduleBuilder {
    p_total: u32,
    placements: Vec<Placement>,
}

impl ScheduleBuilder {
    /// Start building a schedule on `p_total` processors.
    #[must_use]
    pub fn new(p_total: u32) -> Self {
        assert!(p_total >= 1);
        Self {
            p_total,
            placements: Vec::new(),
        }
    }

    /// Place `task` on `procs` processors over `[start, start + duration)`.
    pub fn place(&mut self, task: TaskId, start: f64, duration: f64, procs: u32) -> &mut Self {
        assert!(
            start >= 0.0 && duration >= 0.0,
            "negative time in placement"
        );
        self.placements.push(Placement {
            task,
            start,
            end: start + duration,
            procs,
            proc_ranges: Vec::new(),
            released: start,
        });
        self
    }

    /// Finish: sorts placements by start time and computes the makespan.
    #[must_use]
    pub fn build(mut self) -> Schedule {
        self.placements
            .sort_by(|a, b| a.start.total_cmp(&b.start).then(a.task.cmp(&b.task)));
        let makespan = self.placements.iter().map(|p| p.end).fold(0.0, f64::max);
        Schedule {
            p_total: self.p_total,
            placements: self.placements,
            makespan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sorts_and_computes_makespan() {
        let mut b = ScheduleBuilder::new(4);
        b.place(TaskId(1), 2.0, 3.0, 2);
        b.place(TaskId(0), 0.0, 2.0, 4);
        let s = b.build();
        assert_eq!(s.makespan, 5.0);
        assert_eq!(s.placements[0].task, TaskId(0));
        assert_eq!(s.placements[1].task, TaskId(1));
        assert_eq!(s.placement(TaskId(1)).unwrap().procs, 2);
        assert!(s.placement(TaskId(9)).is_none());
    }

    #[test]
    fn area_and_utilization() {
        let mut b = ScheduleBuilder::new(4);
        b.place(TaskId(0), 0.0, 2.0, 4); // area 8
        b.place(TaskId(1), 2.0, 2.0, 2); // area 4
        let s = b.build();
        assert_eq!(s.total_area(), 12.0);
        assert!((s.utilization() - 12.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule() {
        let s = ScheduleBuilder::new(2).build();
        assert_eq!(s.makespan, 0.0);
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.to_csv(), "task,start,end,procs\n");
    }

    #[test]
    fn assign_proc_ids_replays_pool() {
        let mut b = ScheduleBuilder::new(4);
        b.place(TaskId(0), 0.0, 2.0, 2);
        b.place(TaskId(1), 0.0, 1.0, 2);
        b.place(TaskId(2), 1.0, 1.0, 2); // reuses task 1's processors
        let mut s = b.build();
        s.assign_proc_ids().unwrap();
        assert_eq!(s.placements[0].proc_ranges, vec![(0, 1)]);
        assert_eq!(s.placements[1].proc_ranges, vec![(2, 3)]);
        assert_eq!(s.placements[2].proc_ranges, vec![(2, 3)]);
    }

    #[test]
    fn assign_proc_ids_detects_oversubscription() {
        let mut b = ScheduleBuilder::new(2);
        b.place(TaskId(0), 0.0, 1.0, 2);
        b.place(TaskId(1), 0.5, 1.0, 1);
        let mut s = b.build();
        assert!(s.assign_proc_ids().is_err());
    }

    #[test]
    fn waiting_and_flow_metrics() {
        let mut b = ScheduleBuilder::new(2);
        b.place(TaskId(0), 0.0, 2.0, 1);
        b.place(TaskId(1), 3.0, 1.0, 1);
        let mut s = b.build();
        // Pretend task 1 was released at t = 1 (waited 2).
        s.placements[1].released = 1.0;
        assert_eq!(s.placements[0].waiting(), 0.0);
        assert_eq!(s.placements[1].waiting(), 2.0);
        assert_eq!(s.placements[1].flow(), 3.0);
        assert_eq!(s.mean_waiting(), 1.0);
        assert_eq!(s.mean_flow(), (2.0 + 3.0) / 2.0);
        let empty = ScheduleBuilder::new(1).build();
        assert_eq!(empty.mean_waiting(), 0.0);
        assert_eq!(empty.mean_flow(), 0.0);
    }

    #[test]
    fn csv_roundtrip_fields() {
        let mut b = ScheduleBuilder::new(2);
        b.place(TaskId(3), 0.5, 1.0, 2);
        let csv = b.build().to_csv();
        assert!(csv.contains("3,0.5,1.5,2"));
    }
}
