//! Differential tests: the batched data-oriented engine must be
//! *observationally identical* to the legacy event-at-a-time engine.
//!
//! [`simulate_batched`] changed three things at once: task state moved
//! from per-task enums into struct-of-arrays columns, completions at
//! one time instant are drained and processed as a single batch, and
//! the scheduler computes Algorithm 2 once per distinct weight class
//! per release batch (with an adaptive allocation-cache bypass). Any
//! of those could silently reorder revelation or change an allocation
//! — and both decide tie-breaks, so they decide schedules. These tests
//! run the same frozen instance through both engines with identically
//! configured schedulers and demand bit-identical schedules: same
//! start times, same widths, same released-at stamps, same makespan,
//! same placement order.
//!
//! Mirrors `crates/adversary/tests/frozen_csr_equivalence.rs`, which
//! plays the same role for the frozen-CSR graph refactor.

use moldable_adversary::{amdahl, arbitrary, communication, general, generic, roofline};
use moldable_core::OnlineScheduler;
use moldable_graph::{gen, GraphBuilder, TaskGraph};
use moldable_model::rng::StdRng;
use moldable_model::sample::ParamDistribution;
use moldable_model::{ModelClass, SpeedupModel};
use moldable_sim::{simulate, simulate_batched, Schedule, SimOptions};

fn assert_same_schedule(a: &Schedule, b: &Schedule, ctx: &str) {
    assert_eq!(a.makespan, b.makespan, "{ctx}: makespans differ");
    assert_eq!(
        a.placements, b.placements,
        "{ctx}: placements differ (start order, widths, or release stamps)"
    );
}

/// Run `g` through the legacy engine and the batched engine, with
/// identically configured schedulers, and compare bit-for-bit. Also
/// repeats the batched run with processor-id recording on, so the
/// contiguous-range bookkeeping matches the legacy pool exactly.
fn differential(g: &TaskGraph, p_total: u32, mu: f64, ctx: &str) {
    let mut slow = OnlineScheduler::with_mu(mu);
    let a = simulate(g, &mut slow, &SimOptions::new(p_total)).unwrap();
    a.validate(g).unwrap();

    let mut fast = OnlineScheduler::with_mu(mu);
    let b = simulate_batched(g, &mut fast, &SimOptions::new(p_total)).unwrap();
    b.validate(g).unwrap();
    assert_same_schedule(&a, &b, ctx);

    let mut slow = OnlineScheduler::with_mu(mu);
    let ap = simulate(g, &mut slow, &SimOptions::new(p_total).with_proc_ids()).unwrap();
    let mut fast = OnlineScheduler::with_mu(mu);
    let bp = simulate_batched(g, &mut fast, &SimOptions::new(p_total).with_proc_ids()).unwrap();
    assert_same_schedule(&ap, &bp, ctx);
    for (x, y) in ap.placements.iter().zip(&bp.placements) {
        assert_eq!(x.proc_ranges, y.proc_ranges, "{ctx}: proc ids differ");
    }
}

#[test]
fn batched_engine_matches_legacy_on_generator_shapes() {
    // Every shape family exercises a distinct completion-batch pattern:
    // chains never batch, independent sets batch maximally, trees and
    // butterflies batch per level, dense kernels batch irregularly.
    let cases: &[(&str, u32)] = &[
        ("layered", 12),
        ("fft", 5),
        ("cholesky", 8),
        ("chain", 20),
        ("independent", 20),
        ("fork-join", 6),
        ("in-tree", 5),
        ("out-tree", 5),
        ("random", 40),
        ("lu", 6),
        ("wavefront", 7),
    ];
    for &(shape, size) in cases {
        for seed in [7u64, 42] {
            for class in [ModelClass::Roofline, ModelClass::Amdahl] {
                let p = 32;
                let g = gen::by_name(shape, size, class, p, seed).unwrap();
                differential(
                    &g,
                    p,
                    class.optimal_mu(),
                    &format!("{shape}/{size} seed={seed} {class:?}"),
                );
            }
        }
    }
}

#[test]
fn batched_engine_matches_legacy_on_lower_bound_instances() {
    // The Section 5 constructions are the instances most sensitive to
    // revelation order: their proofs depend on B-tasks being revealed
    // before the next A-task. Identical-length stages mean *every*
    // completion there lands in a multi-event batch.
    let instances = [
        ("roofline-17", roofline::instance(17)),
        ("roofline-64", roofline::instance(64)),
        ("communication-12", communication::instance(12)),
        ("communication-47", communication::instance(47)),
        ("amdahl-k5", amdahl::instance(5)),
        ("general-k6", general::instance(6)),
    ];
    for (name, inst) in instances {
        differential(&inst.graph, inst.p_total, inst.mu, name);
    }
}

#[test]
fn batched_engine_matches_legacy_on_figure_graphs() {
    // Figure 3's chain bundle (Theorem 9's static skeleton) and the
    // Figure 1 generic layered graph at an off-theorem size.
    for l in [2u32, 3, 4] {
        let (g, _) = arbitrary::fig3_graph(l);
        let p = arbitrary::params(l).p_total;
        differential(&g, p, 0.3, &format!("fig3 l={l}"));
    }
    let inst = generic::GenericInstance::build(
        4,
        3,
        &SpeedupModel::amdahl(8.0, 0.25).unwrap(),
        &SpeedupModel::roofline(4.0, 2).unwrap(),
        SpeedupModel::amdahl(2.0, 0.1).unwrap(),
    );
    differential(&inst.graph, 16, 0.3, "generic 4x3");
}

#[test]
fn batched_engine_matches_legacy_on_random_dags() {
    // Density sweep over layered-random DAGs with mixed General-class
    // models: irregular adjacency (empty succ lists, high-degree hubs)
    // plus near-equal durations that produce accidental ties.
    let dist = ParamDistribution::default();
    for case in 0..8u64 {
        let p_total = 24;
        let class = ModelClass::General;
        let mut mrng = StdRng::seed_from_u64(case * 131 + 17);
        let mut assign = gen::weighted_sampler(class, dist.clone(), p_total, &mut mrng);
        let mut srng = StdRng::seed_from_u64(case * 37 + 5);
        let density = 0.1 + 0.1 * (case as f64);
        let g = gen::layered_random(5, 9, density, &mut srng, &mut assign);
        differential(&g, p_total, 0.25, &format!("random-dag case {case}"));
    }
    // The sparse generator feeds the million-task bench; its graphs
    // must go through the same differential.
    for case in 0..4u64 {
        let p_total = 24;
        let mut mrng = StdRng::seed_from_u64(case + 900);
        let dist = ParamDistribution::default();
        let mut assign = gen::weighted_sampler(ModelClass::General, dist, p_total, &mut mrng);
        let mut srng = StdRng::seed_from_u64(case + 77);
        let g = gen::layered_random_sparse(8, 24, 0.08, &mut srng, &mut assign);
        differential(&g, p_total, 0.25, &format!("sparse-layered case {case}"));
    }
}

/// A model with `time(p) = w` for every `p`: Algorithm 2 allocates a
/// single processor and the duration is exact in binary arithmetic, so
/// finish times collide bit-for-bit by construction.
fn constant(w: f64) -> SpeedupModel {
    SpeedupModel::amdahl(0.0, w).unwrap()
}

#[test]
fn simultaneous_finish_tie_break_is_pinned() {
    // Crafted instance: three sources finish at *exactly* t = 2.0 (the
    // durations are powers of two, so equality is bit-exact, not
    // approximate). Each source reveals two children; only 2 of the 6
    // children fit at once (P = 2, one processor each), so the start
    // order of the children is decided purely by revelation order and
    // queue tie-breaks. The legacy engine processes the three
    // completions one event at a time; the batched engine frees and
    // reveals them as one batch. Both must reveal successors in
    // completion-event order (source id order here) and start children
    // in release-sequence order.
    let mut b = GraphBuilder::with_capacity(9);
    let s0 = b.add_task(constant(2.0));
    let s1 = b.add_task(constant(2.0));
    let s2 = b.add_task(constant(2.0));
    let mut children = Vec::new();
    for (i, &s) in [s0, s1, s2].iter().enumerate() {
        for j in 0..2 {
            // Distinct power-of-two durations so a reordering would
            // visibly change start times, not just task labels.
            let c = b.add_task(constant(0.25 * (1 + 2 * i + j) as f64));
            b.add_edge(s, c).unwrap();
            children.push(c);
        }
    }
    let g = b.freeze();
    let p_total = 2;

    differential(&g, p_total, 0.3, "tie-break pin");

    // Pin the exact start order so a *coordinated* regression in both
    // engines cannot slip through the differential: sources in id
    // order at t = 0 (P = 2 admits two; the third waits one batch...
    // but every source needs 1 proc, so starts stagger by finish).
    let mut sched = OnlineScheduler::with_mu(0.3);
    let s = simulate_batched(&g, &mut sched, &SimOptions::new(p_total)).unwrap();
    let order: Vec<u32> = s.placements.iter().map(|p| p.task.0).collect();
    // t=0: s0, s1 start (P=2). t=2: both finish in one batch, reveal
    // c0..c3 in source-id order; s2 was released first so it starts
    // first, then c0. t=4: s2 finishes revealing c4, c5; the queue
    // holds c1, c2, c3, c4, c5 and starts drain in release order as
    // processors free up.
    assert_eq!(order[..2], [s0.0, s1.0], "sources start in id order");
    assert_eq!(order[2], s2.0, "third source starts at the first batch");
    assert_eq!(
        order[3..5],
        [children[0].0, children[1].0],
        "children revealed by the t=2 batch start in revelation order"
    );
    let starts: Vec<f64> = s.placements.iter().map(|p| p.start).collect();
    assert_eq!(starts[..2], [0.0, 0.0]);
    assert_eq!(starts[2], 2.0, "s2 starts the instant s0/s1 finish");
}
