//! Property tests for the simulation substrate: every schedule the
//! engine emits is feasible, regardless of scheduler, and the
//! post-processing utilities (processor-id assignment, utilization
//! profile, trace export) are consistent with it.
//!
//! Gated behind the non-default `slow-tests` feature: each test sweeps
//! many random DAGs, which is too slow for the tier-1 suite.

#![cfg(feature = "slow-tests")]

use moldable_graph::{gen, TaskGraph, TaskId};
use moldable_model::rng::{Rng, StdRng};
use moldable_model::SpeedupModel;
use moldable_sim::{interval_profile, simulate, Scheduler, SimOptions};

/// A deliberately erratic (but legal) scheduler: starts random subsets
/// of the queue with random feasible allocations.
struct ChaoticScheduler {
    rng: StdRng,
    p_total: u32,
    queue: Vec<(TaskId, u32)>, // (task, p_max)
}

impl ChaoticScheduler {
    fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            p_total: 0,
            queue: Vec::new(),
        }
    }
}

impl Scheduler for ChaoticScheduler {
    fn init(&mut self, p_total: u32) {
        self.p_total = p_total;
    }
    fn release(&mut self, task: TaskId, model: &SpeedupModel) {
        self.queue.push((task, model.p_max(self.p_total)));
    }
    fn select(&mut self, _now: f64, free: u32) -> Vec<(TaskId, u32)> {
        let mut free = free;
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.queue.len() {
            if free == 0 {
                break;
            }
            // Randomly skip half the queue; never skip everything when
            // nothing runs (the engine treats a refusal with an empty
            // platform as Stuck — make progress eventually).
            let must_take = out.is_empty() && free == self.p_total;
            if must_take || self.rng.gen_bool(0.5) {
                let (t, p_max) = self.queue.swap_remove(i);
                let p = self.rng.gen_range(1..=p_max.min(free).max(1)).min(free);
                free -= p;
                out.push((t, p));
            } else {
                i += 1;
            }
        }
        out
    }
}

fn random_graph(seed: u64, n: usize) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = moldable_model::sample::ParamDistribution::default();
    let mut assign = gen::weighted_sampler(moldable_model::ModelClass::General, dist, 16, &mut rng);
    let mut srng = StdRng::seed_from_u64(seed ^ 99);
    gen::random_dag(n, 0.2, &mut srng, &mut assign)
}

/// Whatever legal decisions a scheduler makes, the engine's output
/// validates, processor ids can be assigned, and the profile partitions
/// the makespan.
#[test]
fn engine_output_is_always_feasible() {
    for case in 0u64..96 {
        let mut crng = StdRng::seed_from_u64(0xFEA5 ^ case);
        let seed = crng.next_u64();
        let n = crng.gen_range(1usize..25);
        let g = random_graph(seed, n);
        let p_total = 16;
        let mut sched = ChaoticScheduler::new(seed ^ 0xC0FFEE);
        let opts = SimOptions::new(p_total);
        let mut s = simulate(&g, &mut sched, &opts).unwrap();
        s.validate(&g).unwrap();
        s.assign_proc_ids().unwrap();
        // every placement got exactly `procs` processor ids
        for pl in &s.placements {
            let total: u32 = pl.proc_ranges.iter().map(|(lo, hi)| hi - lo + 1).sum();
            assert_eq!(total, pl.procs);
        }
        let prof = interval_profile(&s, 0.3);
        assert!((prof.total() - s.makespan).abs() <= 1e-9 * s.makespan.max(1.0));
        // trace export emits one event per processor-lane
        let json = s.to_chrome_trace(|i| format!("t{i}"));
        let lanes: usize = s.placements.iter().map(|p| p.procs as usize).sum();
        assert_eq!(json.matches("\"ph\": \"X\"").count(), lanes);
    }
}

/// Engine + proc-id recording agree with post-hoc assignment on
/// capacity feasibility.
#[test]
fn recorded_proc_ids_match_capacity() {
    for case in 0u64..96 {
        let mut crng = StdRng::seed_from_u64(0x9D5 ^ case);
        let seed = crng.next_u64();
        let n = crng.gen_range(1usize..20);
        let g = random_graph(seed, n);
        let mut sched = ChaoticScheduler::new(seed);
        let opts = SimOptions::new(8).with_proc_ids();
        let s = simulate(&g, &mut sched, &opts).unwrap();
        s.validate(&g).unwrap();
        for pl in &s.placements {
            let total: u32 = pl.proc_ranges.iter().map(|(lo, hi)| hi - lo + 1).sum();
            assert_eq!(total, pl.procs);
            for &(lo, hi) in &pl.proc_ranges {
                assert!(lo <= hi && hi < 8);
            }
        }
    }
}

/// Release-date streams: every task starts at or after its release.
#[test]
fn timed_arrivals_respect_release_dates() {
    use moldable_sim::{simulate_instance, TimedArrivals};
    for case in 0u64..96 {
        let mut crng = StdRng::seed_from_u64(0xA221 ^ case);
        let seed = crng.next_u64();
        let n = crng.gen_range(1usize..30);
        let mut rng = StdRng::seed_from_u64(seed);
        let releases: Vec<(f64, SpeedupModel)> = (0..n)
            .map(|_| {
                let r = rng.gen_range(0.0..20.0);
                let w = rng.gen_range(0.5..10.0);
                (r, SpeedupModel::amdahl(w, 0.1).unwrap())
            })
            .collect();
        let mut inst = TimedArrivals::new(releases);
        let dates: Vec<f64> = (0..n).map(|i| inst.release_date(i)).collect();
        let mut sched = ChaoticScheduler::new(seed ^ 3);
        let s = simulate_instance(&mut inst, &mut sched, &SimOptions::new(4)).unwrap();
        assert_eq!(s.placements.len(), n);
        for pl in &s.placements {
            assert!(
                pl.start >= dates[pl.task.index()] - 1e-9,
                "task {} started {} before its release {}",
                pl.task,
                pl.start,
                dates[pl.task.index()]
            );
        }
        s.check_capacity(1e-9).unwrap();
    }
}
