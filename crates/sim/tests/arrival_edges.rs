//! Arrival-order tie-breaks pinned bit-identically across engines.
//!
//! A batch of tasks sharing one release instant can be expressed three
//! ways: as a [`TimedArrivals`] stream driven by the general engine,
//! as an independent-tasks graph driven by the general engine, and as
//! the same graph driven by the batched engine. All three must place
//! every task with bit-equal `(start, end, procs, released)` — the
//! revelation order for simultaneous arrivals (submission order) and
//! the completion tie-break (start sequence) are part of the engine
//! contract, not an accident of implementation. The incremental
//! [`Stepper`] joins the pin as a fourth expression of the same run.

use moldable_graph::{GraphBuilder, TaskGraph, TaskId};
use moldable_model::SpeedupModel;
use moldable_sim::{
    simulate, simulate_batched, simulate_instance, BatchScheduler, BatchStart, Placement,
    Scheduler, SimOptions, Stepper, TimedArrivals,
};

fn unit(w: f64) -> SpeedupModel {
    SpeedupModel::amdahl(w, 0.0).unwrap()
}

/// Greedy FIFO on one processor per task (general-engine form).
#[derive(Default)]
struct Fifo {
    queue: std::collections::VecDeque<TaskId>,
}

impl Scheduler for Fifo {
    fn release(&mut self, task: TaskId, _m: &SpeedupModel) {
        self.queue.push_back(task);
    }
    fn select(&mut self, _now: f64, free: u32) -> Vec<(TaskId, u32)> {
        let take = (free as usize).min(self.queue.len());
        self.queue.drain(..take).map(|t| (t, 1)).collect()
    }
}

/// The same policy in batched form; durations are keyed at release,
/// exactly as the contract demands.
#[derive(Default)]
struct BatchFifo {
    queue: std::collections::VecDeque<BatchStart>,
}

impl BatchScheduler for BatchFifo {
    fn release_batch(&mut self, graph: &TaskGraph, now: f64, tasks: &[TaskId]) {
        for &t in tasks {
            self.queue.push_back(BatchStart {
                task: t,
                procs: 1,
                dur: graph.model(t).time(1),
                released: now,
            });
        }
    }
    fn select_batch(&mut self, _now: f64, free: u32, out: &mut Vec<BatchStart>) {
        let take = (free as usize).min(self.queue.len());
        out.extend(self.queue.drain(..take));
    }
}

fn fingerprint(placements: &[Placement]) -> Vec<(u32, u64, u64, u32, u64)> {
    placements
        .iter()
        .map(|pl| {
            (
                pl.task.0,
                pl.start.to_bits(),
                pl.end.to_bits(),
                pl.procs,
                pl.released.to_bits(),
            )
        })
        .collect()
}

/// Work mix engineered so that many tasks finish at the same instant
/// (durations repeat with period 4) — every simultaneous-completion
/// tie-break and every simultaneous-arrival revelation is exercised.
fn tie_heavy_works(n: u32) -> Vec<f64> {
    (0..n).map(|i| 1.0 + f64::from(i % 4)).collect()
}

#[test]
fn arrival_tie_breaks_agree_across_legacy_batched_and_stepper() {
    let n = 64;
    let p = 6;
    let works = tie_heavy_works(n);
    let opts = SimOptions::new(p);

    // 1) TimedArrivals: all release dates equal (t = 0).
    let releases: Vec<(f64, SpeedupModel)> = works.iter().map(|&w| (0.0, unit(w))).collect();
    let via_arrivals = simulate_instance(
        &mut TimedArrivals::new(releases.clone()),
        &mut Fifo::default(),
        &opts,
    )
    .unwrap();

    // 2) The equivalent independent-tasks graph, general engine.
    let mut b = GraphBuilder::new();
    for &w in &works {
        b.add_task(unit(w));
    }
    let graph = b.freeze();
    let via_graph = simulate(&graph, &mut Fifo::default(), &opts).unwrap();

    // 3) Same graph, batched engine.
    let via_batched = simulate_batched(&graph, &mut BatchFifo::default(), &opts).unwrap();

    // 4) TimedArrivals again, incremental stepper.
    let via_stepper = Stepper::new(TimedArrivals::new(releases), Fifo::default(), &opts)
        .finish()
        .unwrap();

    let reference = fingerprint(&via_arrivals.placements);
    assert_eq!(
        fingerprint(&via_graph.placements),
        reference,
        "graph/legacy"
    );
    assert_eq!(fingerprint(&via_batched.placements), reference, "batched");
    assert_eq!(fingerprint(&via_stepper.placements), reference, "stepper");
    assert_eq!(
        via_arrivals.makespan.to_bits(),
        via_batched.makespan.to_bits()
    );
    assert_eq!(
        via_arrivals.makespan.to_bits(),
        via_stepper.makespan.to_bits()
    );
}

#[test]
fn staggered_zero_gap_bursts_agree_between_engine_and_stepper() {
    // Bursts of simultaneous arrivals at t = 0, 0.5, 0.5, 2 — the
    // 0.5 burst is split across two submission groups to exercise the
    // stable tie-break between groups as well as within one.
    let mut releases = Vec::new();
    for (at, k) in [(0.0, 5u32), (0.5, 3), (0.5, 4), (2.0, 6)] {
        for i in 0..k {
            releases.push((at, unit(1.0 + f64::from(i % 2))));
        }
    }
    let opts = SimOptions::new(3);
    let reference = simulate_instance(
        &mut TimedArrivals::new(releases.clone()),
        &mut Fifo::default(),
        &opts,
    )
    .unwrap();
    let mut stepper = Stepper::new(TimedArrivals::new(releases), Fifo::default(), &opts);
    let mut done = Vec::new();
    // Advance in awkward slices that straddle the burst instants.
    for horizon in [0.4, 0.5, 0.6, 1.9, 2.0, f64::INFINITY] {
        stepper.advance_until(horizon, &mut done).unwrap();
    }
    assert_eq!(done.len(), reference.placements.len());
    assert_eq!(
        fingerprint(stepper.placements()),
        fingerprint(&reference.placements)
    );
}
