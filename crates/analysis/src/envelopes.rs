//! Per-model `(α_x, β_x)` envelopes — Lemmas 6–9.
//!
//! Each of the paper's speedup models admits a family of processor
//! allocations parameterized by `x` achieving area stretch `α_x` and
//! time stretch `β_x` *for every task of the model*. Minimizing
//! `lemma5_ratio(μ, α_{x})` subject to `β_x ≤ δ(μ)` over `x`, then over
//! `μ`, yields the Table 1 upper bounds.

use moldable_model::delta;

use crate::lemma5_ratio;

/// Roofline model (Lemma 6): `α = β = 1` — allocating `p̄` processors
/// achieves both minimum time and minimum area.
pub mod roofline {
    /// `α_x = 1` for all x.
    #[must_use]
    pub fn alpha(_x: f64) -> f64 {
        1.0
    }

    /// `β_x = 1` for all x.
    #[must_use]
    pub fn beta(_x: f64) -> f64 {
        1.0
    }

    /// Ratio as a function of μ: `1/μ`.
    #[must_use]
    pub fn ratio_at(mu: f64) -> f64 {
        if mu <= 0.0 || mu > moldable_model::MU_MAX {
            return f64::INFINITY;
        }
        1.0 / mu
    }
}

/// Communication model (Lemma 7): allocation `p = min(⌈x√w′⌉, P)`
/// achieves `α_x = 1 + x² + x/3` and `β_x = (3/5)(1/x + x)` for any
/// `x ∈ [(√13−1)/6, 1/2]`.
pub mod communication {
    use super::{delta, lemma5_ratio};

    /// Smallest admissible x: `(√13 − 1)/6` (needed so `α_x ≥ 4/3`
    /// covers the small-task Case 1 of the proof).
    #[must_use]
    pub fn x_min() -> f64 {
        (13.0_f64.sqrt() - 1.0) / 6.0
    }

    /// Largest admissible x: `1/2` (needed so `β_x ≥ 3/2`).
    #[must_use]
    pub fn x_max() -> f64 {
        0.5
    }

    /// `α_x = 1 + x² + x/3`.
    #[must_use]
    pub fn alpha(x: f64) -> f64 {
        1.0 + x * x + x / 3.0
    }

    /// `β_x = (3/5)(1/x + x)`.
    #[must_use]
    pub fn beta(x: f64) -> f64 {
        0.6 * (1.0 / x + x)
    }

    /// Theorem 2's closed form: the smallest `x` with `β_x ≤ δ(μ)`,
    /// i.e. the smaller root of `(3/5)x² − δx + 3/5 = 0`:
    /// `x*(μ) = (5/6)(δ − √(δ² − 36/25))`. `None` when no admissible
    /// `x ∈ [x_min, x_max]` satisfies the constraint.
    #[must_use]
    pub fn x_star(mu: f64) -> Option<f64> {
        if mu <= 0.0 || mu > moldable_model::MU_MAX {
            return None;
        }
        let d = delta(mu);
        let disc = d * d - 36.0 / 25.0;
        if disc < 0.0 {
            return None;
        }
        // Smallest feasible x (alpha is increasing in x, so smaller is
        // better), clamped into the lemma's admissible range.
        let x = (5.0 / 6.0) * (d - disc.sqrt());
        let x = x.clamp(x_min(), x_max());
        (beta(x) <= d * (1.0 + 1e-12)).then_some(x)
    }

    /// Ratio as a function of μ (∞ outside the feasible region).
    #[must_use]
    pub fn ratio_at(mu: f64) -> f64 {
        match x_star(mu) {
            Some(x) => lemma5_ratio(mu, alpha(x)),
            None => f64::INFINITY,
        }
    }
}

/// Amdahl's model (Lemma 8): allocation `p = min(⌈x·w/d⌉, P)` achieves
/// `α_x = 1 + x` and `β_x = 1 + 1/x` for any `x > 0`.
pub mod amdahl {
    use super::lemma5_ratio;

    /// `α_x = 1 + x`.
    #[must_use]
    pub fn alpha(x: f64) -> f64 {
        1.0 + x
    }

    /// `β_x = 1 + 1/x`.
    #[must_use]
    pub fn beta(x: f64) -> f64 {
        1.0 + 1.0 / x
    }

    /// Theorem 3's closed form: the smallest `x` with `1 + 1/x ≤ δ(μ)`:
    /// `x*(μ) = μ(1−μ)/(μ² − 3μ + 1)`. `None` when `δ(μ) ≤ 1` (i.e.
    /// `μ = μ_max`, where no finite x is feasible).
    #[must_use]
    pub fn x_star(mu: f64) -> Option<f64> {
        if mu <= 0.0 || mu > moldable_model::MU_MAX {
            return None;
        }
        let denom = mu * mu - 3.0 * mu + 1.0; // > 0 iff mu < MU_MAX
        (denom > 0.0).then(|| mu * (1.0 - mu) / denom)
    }

    /// Ratio as a function of μ — also expressible as the paper's
    /// `f(μ) = (−2μ³+5μ²−4μ+1)/(−μ⁴+4μ³−4μ²+μ)`.
    #[must_use]
    pub fn ratio_at(mu: f64) -> f64 {
        match x_star(mu) {
            Some(x) => lemma5_ratio(mu, alpha(x)),
            None => f64::INFINITY,
        }
    }

    /// The paper's explicit rational form of the ratio (used to
    /// cross-check [`ratio_at`]).
    #[must_use]
    pub fn ratio_closed_form(mu: f64) -> f64 {
        (-2.0 * mu.powi(3) + 5.0 * mu.powi(2) - 4.0 * mu + 1.0)
            / (-mu.powi(4) + 4.0 * mu.powi(3) - 4.0 * mu.powi(2) + mu)
    }

    const _: () = {
        // beta(x_star) == delta by construction; checked in tests.
    };

    #[allow(unused_imports)]
    use super::delta as _delta_used;
}

/// General model (Lemma 9): allocation
/// `p = min(⌈(w′+d′)/(x(√w′+d′))⌉, p̄, P)` achieves
/// `α_x = 1 + 1/x + 1/x²` and `β_x = x + 1 + 1/x` for any `x > 1`.
pub mod general {
    use super::{delta, lemma5_ratio};

    /// `α_x = 1 + 1/x + 1/x²` (decreasing in x).
    #[must_use]
    pub fn alpha(x: f64) -> f64 {
        1.0 + 1.0 / x + 1.0 / (x * x)
    }

    /// `β_x = x + 1 + 1/x` (increasing for x > 1).
    #[must_use]
    pub fn beta(x: f64) -> f64 {
        x + 1.0 + 1.0 / x
    }

    /// Theorem 4's closed form: the *largest* `x` with `β_x ≤ δ(μ)`
    /// (α decreases with x, so larger is better): the larger root of
    /// `x² − (δ−1)x + 1 = 0`. `None` when `δ(μ) < 3` (no root ≥ 1).
    #[must_use]
    pub fn x_star(mu: f64) -> Option<f64> {
        if mu <= 0.0 || mu > moldable_model::MU_MAX {
            return None;
        }
        let q = delta(mu) - 1.0; // the paper's (μ²−3μ+1)/(μ(1−μ))
        let disc = q * q - 4.0;
        if disc < 0.0 {
            return None;
        }
        let x = 0.5 * (q + disc.sqrt());
        (x >= 1.0).then_some(x)
    }

    /// Ratio as a function of μ (∞ outside the feasible region).
    #[must_use]
    pub fn ratio_at(mu: f64) -> f64 {
        match x_star(mu) {
            Some(x) => lemma5_ratio(mu, alpha(x)),
            None => f64::INFINITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moldable_model::MU_MAX;

    #[test]
    fn communication_x_star_saturates_constraint() {
        for mu in [0.32, 0.324, 0.33] {
            let x = communication::x_star(mu).expect("feasible");
            let d = delta(mu);
            assert!(communication::beta(x) <= d * (1.0 + 1e-9));
            // x is the boundary root (or clamped): a slightly smaller x
            // must violate the constraint unless we hit the clamp.
            if x > communication::x_min() + 1e-9 {
                assert!(communication::beta(x - 1e-6) > d - 1e-6);
            }
        }
    }

    #[test]
    fn communication_infeasible_near_mu_max() {
        // At mu = MU_MAX, delta = 1 < beta_x >= 6/5·... : infeasible.
        assert!(communication::x_star(MU_MAX - 1e-6).is_none());
        assert_eq!(communication::ratio_at(MU_MAX - 1e-6), f64::INFINITY);
    }

    #[test]
    fn amdahl_x_star_saturates_constraint() {
        for mu in [0.2, 0.271, 0.3] {
            let x = amdahl::x_star(mu).expect("feasible");
            assert!((amdahl::beta(x) - delta(mu)).abs() < 1e-9);
        }
        assert!(amdahl::x_star(MU_MAX).is_none() || amdahl::x_star(MU_MAX).unwrap() > 1e6);
    }

    #[test]
    fn amdahl_closed_form_matches_composition() {
        for mu in [0.15, 0.2, 0.25, 0.271, 0.3, 0.35] {
            let a = amdahl::ratio_at(mu);
            let b = amdahl::ratio_closed_form(mu);
            assert!((a - b).abs() < 1e-9 * b, "mu={mu}: {a} vs {b}");
        }
    }

    #[test]
    fn general_x_star_saturates_constraint() {
        for mu in [0.15, 0.2, 0.211] {
            let x = general::x_star(mu).expect("feasible");
            assert!(x > 1.0);
            assert!((general::beta(x) - delta(mu)).abs() < 1e-9);
        }
        // delta < 3 for mu > ~0.24: infeasible.
        assert!(general::x_star(0.3).is_none());
    }

    #[test]
    fn envelopes_dominate_roofline() {
        // The general model generalizes the others, so its ratio at any
        // mu is at least the roofline's.
        for mu in [0.15, 0.2, 0.211] {
            assert!(general::ratio_at(mu) >= roofline::ratio_at(mu));
        }
    }

    #[test]
    fn alpha_beta_shapes() {
        // communication: alpha increasing, beta convex with min at x=1.
        assert!(communication::alpha(0.45) > communication::alpha(0.44));
        assert!(communication::beta(0.44) > communication::beta(0.45));
        // amdahl: alpha increasing, beta decreasing.
        assert!(amdahl::alpha(2.0) > amdahl::alpha(1.0));
        assert!(amdahl::beta(2.0) < amdahl::beta(1.0));
        // general: alpha decreasing, beta increasing (x > 1).
        assert!(general::alpha(3.0) < general::alpha(2.0));
        assert!(general::beta(3.0) > general::beta(2.0));
    }
}
