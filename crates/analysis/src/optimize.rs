//! Scalar minimization, used to tune `μ` per model class exactly as
//! the paper's proofs do ("minimizing this function numerically for
//! μ ∈ (0, (3−√5)/2]").

/// Search for the minimum of `f` on `[a, b]`.
///
/// `f` may return `f64::INFINITY` outside its feasible region; the
/// search first brackets the minimum with a coarse grid scan (robust
/// to infinite plateaus on either side), then refines by
/// golden-section search, assuming `f` is unimodal on its feasible
/// interval — which holds for all the ratio functions of Theorems 2–4.
/// Returns `(x_min, f(x_min))`.
///
/// # Panics
///
/// Panics if `a >= b`, `tol <= 0`, or `f` is infinite on the whole
/// interval.
#[must_use]
pub fn golden_section_min(f: &dyn Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> (f64, f64) {
    assert!(a < b, "need a < b");
    assert!(tol > 0.0);
    // Bracket: coarse scan for the best grid point.
    const GRID: usize = 512;
    let step = (b - a) / GRID as f64;
    let mut best_i = 0;
    let mut best_f = f64::INFINITY;
    for i in 0..=GRID {
        let x = a + step * i as f64;
        let fx = f(x);
        if fx < best_f {
            best_f = fx;
            best_i = i;
        }
    }
    assert!(best_f.is_finite(), "f is infinite on the whole interval");
    let lo = a + step * best_i.saturating_sub(1) as f64;
    let hi = a + step * (best_i + 1).min(GRID) as f64;
    golden_section_core(f, lo, hi, tol)
}

fn golden_section_core(f: &dyn Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> (f64, f64) {
    const INV_PHI: f64 = 0.618_033_988_749_894_8; // (sqrt(5) - 1) / 2
    let (mut a, mut b) = (a, b);
    let mut c = b - (b - a) * INV_PHI;
    let mut d = a + (b - a) * INV_PHI;
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - (b - a) * INV_PHI;
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + (b - a) * INV_PHI;
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    (x, f(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_parabola_minimum() {
        let (x, fx) = golden_section_min(&|x| (x - 2.5).powi(2) + 1.0, 0.0, 10.0, 1e-10);
        assert!((x - 2.5).abs() < 1e-7);
        assert!((fx - 1.0).abs() < 1e-12);
    }

    #[test]
    fn finds_boundary_minimum() {
        // Monotone decreasing: minimum at the right edge.
        let (x, _) = golden_section_min(&|x| -x, 0.0, 1.0, 1e-10);
        assert!((x - 1.0).abs() < 1e-7);
    }

    #[test]
    fn tolerates_infinite_regions() {
        // Feasible only on [2, 3], minimum of (x-2.2)^2 there.
        let f = |x: f64| {
            if (2.0..=3.0).contains(&x) {
                (x - 2.2).powi(2)
            } else {
                f64::INFINITY
            }
        };
        let (x, _) = golden_section_min(&f, 0.0, 10.0, 1e-10);
        assert!((x - 2.2).abs() < 1e-6, "got {x}");
    }

    #[test]
    fn nonsmooth_vee() {
        let (x, fx) = golden_section_min(&|x: f64| (x - 1.0).abs(), -5.0, 5.0, 1e-10);
        assert!((x - 1.0).abs() < 1e-7);
        assert!(fx < 1e-7);
    }
}
