//! The numerical side of the paper's analysis: per-model `(α_x, β_x)`
//! envelopes (Lemmas 6–9), the generic ratio of Lemma 5, the
//! minimization over `μ` that yields the Table 1 upper bounds
//! (Theorems 1–4), the closed-form lower bounds on the algorithm's
//! competitiveness (Theorems 5–8), and the `Ω(ln D)` bound of
//! Theorem 9.
//!
//! Everything here is pure `f64` math — no scheduling — and serves as
//! the oracle the simulation experiments are compared against.
//!
//! # Example
//!
//! ```
//! use moldable_analysis::{upper_bound, algorithm_lower_bound};
//! use moldable_model::ModelClass;
//!
//! let ub = upper_bound(ModelClass::Amdahl);
//! assert!((ub.ratio - 4.74).abs() < 0.01);   // Theorem 3
//! assert!((ub.mu - 0.271).abs() < 0.005);
//! let lb = algorithm_lower_bound(ModelClass::Amdahl);
//! // Theorem 7 — for Amdahl the construction is tight: lb ≈ ub.
//! assert!(lb > 4.73 - 0.01 && lb <= ub.ratio + 1e-5);
//! ```

#![forbid(unsafe_code)]

mod envelopes;
pub mod improved;
mod optimize;

pub use envelopes::{amdahl, communication, general, roofline};
pub use optimize::golden_section_min;

use moldable_model::{delta, ModelClass, MU_MAX};

/// The generic competitive ratio of Lemma 5:
/// `(μα + 1 − 2μ) / (μ(1 − μ))`, valid whenever every task's initial
/// allocation achieves area stretch `≤ α` and time stretch
/// `≤ (1−2μ)/(μ(1−μ))`.
///
/// # Panics
///
/// Panics if `mu ∉ (0, 1)`.
#[must_use]
pub fn lemma5_ratio(mu: f64, alpha: f64) -> f64 {
    assert!(mu > 0.0 && mu < 1.0);
    (mu * alpha + 1.0 - 2.0 * mu) / (mu * (1.0 - mu))
}

/// Result of the upper-bound minimization for one model class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bound {
    /// The competitive-ratio upper bound (Table 1, first row).
    pub ratio: f64,
    /// The minimizing `μ*`.
    pub mu: f64,
    /// The allocation parameter `x*(μ*)` (1.0 for roofline, where no
    /// `x` exists).
    pub x: f64,
}

/// Numerically reproduce the Table 1 *upper* bound for `class`
/// (Theorems 1–4): minimize `lemma5_ratio(μ, α_{x*(μ)})` over
/// `μ ∈ (0, (3−√5)/2]`.
///
/// # Panics
///
/// Panics for [`ModelClass::Arbitrary`], where Theorem 9 rules out any
/// constant bound.
#[must_use]
pub fn upper_bound(class: ModelClass) -> Bound {
    match class {
        ModelClass::Roofline => {
            // alpha = beta = 1 (Lemma 6); ratio = 1/mu, minimized at MU_MAX.
            Bound {
                ratio: 1.0 / MU_MAX,
                mu: MU_MAX,
                x: 1.0,
            }
        }
        ModelClass::Communication => {
            minimize_over_mu(communication::ratio_at, communication::x_star)
        }
        ModelClass::Amdahl => minimize_over_mu(amdahl::ratio_at, amdahl::x_star),
        ModelClass::General => minimize_over_mu(general::ratio_at, general::x_star),
        ModelClass::Arbitrary => {
            panic!("no constant competitive ratio exists for the arbitrary model (Theorem 9)")
        }
    }
}

fn minimize_over_mu(ratio_at: impl Fn(f64) -> f64, x_star: impl Fn(f64) -> Option<f64>) -> Bound {
    let (mu, ratio) = golden_section_min(&ratio_at, 1e-4, MU_MAX, 1e-10);
    let x = x_star(mu).expect("minimizer lies in the feasible region");
    Bound { ratio, mu, x }
}

/// The paper's closed-form lower bound on the competitiveness of *this
/// algorithm* (Table 1, second row), evaluated at the μ the algorithm
/// uses for `class`:
///
/// * roofline (Thm 5): `1/μ`;
/// * communication (Thm 6): `1/μ + μ/(1−2μ) − 1/(3(1−μ))`;
/// * Amdahl (Thm 7) and general (Thm 8): `δ/((δ−1)(1−μ)) + δ`.
///
/// # Panics
///
/// Panics for [`ModelClass::Arbitrary`].
#[must_use]
pub fn algorithm_lower_bound(class: ModelClass) -> f64 {
    let mu = class.optimal_mu();
    let d = delta(mu);
    match class {
        ModelClass::Roofline => 1.0 / mu,
        ModelClass::Communication => 1.0 / mu + mu / (1.0 - 2.0 * mu) - 1.0 / (3.0 * (1.0 - mu)),
        ModelClass::Amdahl | ModelClass::General => d / ((d - 1.0) * (1.0 - mu)) + d,
        ModelClass::Arbitrary => {
            panic!("use deterministic_lower_bound for the arbitrary model")
        }
    }
}

/// Theorem 9: any deterministic online algorithm is at least
/// `ln K − ln ℓ − 1/ℓ`-competitive on the chain instance with
/// parameters `K = 2^ℓ` groups (the bound grows as `Ω(ln D)` with the
/// graph depth `D = K`).
///
/// # Panics
///
/// Panics if `l < 1` or `k < 2`.
#[must_use]
pub fn deterministic_lower_bound(k: u32, l: u32) -> f64 {
    assert!(l >= 1 && k >= 2);
    f64::from(k).ln() - f64::from(l).ln() - 1.0 / f64::from(l)
}

/// Harmonic number `H_j = Σ_{i=1..j} 1/i`, used in Theorem 9's proof
/// (`ln j + γ < H_j < ln j + γ + 1/j`).
#[must_use]
pub fn harmonic(j: u32) -> f64 {
    (1..=j).map(|i| 1.0 / f64::from(i)).sum()
}

/// The exact makespan lower bound of Lemma 10 summed:
/// `Σ_{i=1..K} 1/(ℓ+i)` — what the adversary forces on any
/// deterministic algorithm (tighter than [`deterministic_lower_bound`]).
#[must_use]
pub fn lemma10_makespan(k: u32, l: u32) -> f64 {
    (1..=k).map(|i| 1.0 / f64::from(l + i)).sum()
}

/// One row of Table 1, as reproduced by this crate (upper bounds) and
/// the paper's closed forms (lower bounds).
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Model class.
    pub class: ModelClass,
    /// Reproduced upper bound (numerical minimization).
    pub upper: Bound,
    /// Reproduced lower bound (closed form at the class μ).
    pub lower: f64,
    /// The paper's printed values (upper, lower) for comparison.
    pub paper: (f64, f64),
}

/// Recompute all of Table 1.
#[must_use]
pub fn table1() -> Vec<Table1Row> {
    ModelClass::bounded_classes()
        .into_iter()
        .map(|class| Table1Row {
            class,
            upper: upper_bound(class),
            lower: algorithm_lower_bound(class),
            paper: (
                class.proven_upper_bound().expect("bounded class"),
                class.proven_lower_bound().expect("bounded class"),
            ),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma5_ratio_roofline_special_case() {
        // alpha = 1: ratio = 1/mu.
        for mu in [0.1, 0.2, 0.3, MU_MAX] {
            assert!((lemma5_ratio(mu, 1.0) - 1.0 / mu).abs() < 1e-12);
        }
    }

    #[test]
    fn table1_upper_bounds_match_paper() {
        // Theorem 1-4 constants to the paper's printed precision.
        let t = table1();
        for row in &t {
            assert!(
                (row.upper.ratio - row.paper.0).abs() < 0.01,
                "{}: reproduced UB {} vs paper {}",
                row.class,
                row.upper.ratio,
                row.paper.0
            );
        }
    }

    #[test]
    fn table1_lower_bounds_match_paper() {
        let t = table1();
        for row in &t {
            assert!(
                (row.lower - row.paper.1).abs() < 0.01,
                "{}: reproduced LB {} vs paper {}",
                row.class,
                row.lower,
                row.paper.1
            );
        }
    }

    #[test]
    fn lower_bounds_do_not_exceed_upper_bounds() {
        // The Amdahl construction is *tight*: its lower bound equals
        // the upper bound to ~6 decimal places, so allow float slack.
        for row in table1() {
            assert!(
                row.lower <= row.upper.ratio + 1e-5,
                "{}: LB {} vs UB {}",
                row.class,
                row.lower,
                row.upper.ratio
            );
        }
    }

    #[test]
    fn minimizing_mu_matches_model_class_constants() {
        for class in ModelClass::bounded_classes() {
            let b = upper_bound(class);
            assert!(
                (b.mu - class.optimal_mu()).abs() < 2e-3,
                "{class}: mu* = {} vs constant {}",
                b.mu,
                class.optimal_mu()
            );
        }
    }

    #[test]
    fn x_star_values_match_paper() {
        let comm = upper_bound(ModelClass::Communication);
        assert!((comm.x - 0.446).abs() < 0.005, "x* = {}", comm.x);
        let amd = upper_bound(ModelClass::Amdahl);
        assert!((amd.x - 0.759).abs() < 0.005, "x* = {}", amd.x);
        let gen = upper_bound(ModelClass::General);
        assert!((gen.x - 1.972).abs() < 0.005, "x* = {}", gen.x);
    }

    #[test]
    fn roofline_bound_is_golden_ratio_squared() {
        // 1/mu = (3+sqrt(5))/2 = phi^2 ≈ 2.618.
        let b = upper_bound(ModelClass::Roofline);
        assert!((b.ratio - (3.0 + 5.0_f64.sqrt()) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_lower_bound_grows_with_k() {
        let mut prev = f64::NEG_INFINITY;
        for e in 2..10 {
            let k = 1u32 << e;
            let b = deterministic_lower_bound(k, 2);
            assert!(b > prev);
            prev = b;
        }
        // ln bound sandwiched by Lemma 10's exact sum.
        for l in [1u32, 2, 3] {
            let k = 1u32 << l;
            assert!(lemma10_makespan(k * k, l) >= deterministic_lower_bound(k * k, l));
        }
    }

    #[test]
    fn harmonic_brackets_log() {
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        for j in [10u32, 100, 1000] {
            let h = harmonic(j);
            let lj = f64::from(j).ln();
            assert!(h > lj + EULER_GAMMA);
            assert!(h < lj + EULER_GAMMA + 1.0 / f64::from(j));
        }
    }

    #[test]
    #[should_panic(expected = "no constant competitive ratio")]
    fn arbitrary_has_no_upper_bound() {
        let _ = upper_bound(ModelClass::Arbitrary);
    }
}
