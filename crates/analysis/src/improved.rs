//! Envelopes for the Improved'23 *dual* allocation (minimize time
//! subject to an area budget `a(p) ≤ λ·a_min`, in the spirit of
//! Perotin & Sun, arXiv 2304.14127).
//!
//! The dual allocation enforces its area stretch `α ≤ λ` *by
//! construction* — integer rounding only shrinks the chosen `p`, hence
//! the area — so Lemma 5 applies with `α = λ` and no rounding slack.
//! On the communication model this drops the `x/3` rounding term the
//! ICPP'22 analysis pays (`α_x = 1 + x²` instead of `1 + x² + x/3`),
//! tightening the proven envelope from 3.61 to ≈ 3.37. On the roofline
//! model the two allocations coincide (`λ = 1` picks exactly `p_max`),
//! and on the Amdahl and general models the `(α_x, β_x)` families had
//! no rounding slack to begin with, so those envelopes match ICPP'22's
//! — the dual allocation's advantage there is empirical, not in the
//! proven constant (the conformance harness measures it anyway).
//!
//! [`upper_bound`] numerically minimizes each envelope over `μ` and is
//! pinned against `AlgoName::proven_upper_bound` in the conformance
//! harness (this crate has no dependency on `moldable-core`, so the
//! cross-check lives there).

use moldable_model::{ModelClass, MU_MAX};

use crate::{envelopes, golden_section_min, lemma5_ratio, Bound};

/// Roofline: the dual allocation with `λ = 1` picks `p_max` exactly —
/// identical to ICPP'22, ratio `1/μ`.
pub mod roofline {
    /// Ratio as a function of μ: `1/μ`.
    #[must_use]
    pub fn ratio_at(mu: f64) -> f64 {
        crate::roofline::ratio_at(mu)
    }
}

/// Communication: budget `λ = 1 + x²` makes every allocation of the
/// Lemma 7 family affordable (`p = ⌈x√w′⌉` has area `≤ (1 + x²)w`
/// *before* rounding, and the dual's rounding can only help), while the
/// dual picks the *fastest* affordable `p`, so its time stretch is at
/// most the family's `β_x = (3/5)(1/x + x)`. Lemma 5 then applies with
/// `α = λ = 1 + x²` — no `x/3` term.
pub mod communication {
    use super::{envelopes, lemma5_ratio};

    /// `α_x = λ = 1 + x²` (the ICPP'22 bound minus the rounding term).
    #[must_use]
    pub fn alpha(x: f64) -> f64 {
        1.0 + x * x
    }

    /// Same feasible `x*(μ)` as the ICPP'22 envelope — the time-stretch
    /// constraint `β_x ≤ δ(μ)` is unchanged.
    #[must_use]
    pub fn x_star(mu: f64) -> Option<f64> {
        envelopes::communication::x_star(mu)
    }

    /// Ratio as a function of μ (∞ outside the feasible region).
    #[must_use]
    pub fn ratio_at(mu: f64) -> f64 {
        match x_star(mu) {
            Some(x) => lemma5_ratio(mu, alpha(x)),
            None => f64::INFINITY,
        }
    }
}

/// Amdahl: the Lemma 8 family `α_x = 1 + x`, `β_x = 1 + 1/x` has no
/// rounding slack, so the dual envelope equals ICPP'22's.
pub mod amdahl {
    /// Ratio as a function of μ — identical to the ICPP'22 envelope.
    #[must_use]
    pub fn ratio_at(mu: f64) -> f64 {
        crate::amdahl::ratio_at(mu)
    }
}

/// General (and arbitrary-but-monotone): the Lemma 9 family
/// `α_x = 1 + 1/x + 1/x²`, `β_x = x + 1 + 1/x` has no rounding slack,
/// so the dual envelope equals ICPP'22's.
pub mod general {
    /// Ratio as a function of μ — identical to the ICPP'22 envelope.
    #[must_use]
    pub fn ratio_at(mu: f64) -> f64 {
        crate::general::ratio_at(mu)
    }
}

/// Numerically minimize the dual allocation's envelope for `class`
/// over `μ ∈ (0, (3−√5)/2]`.
///
/// # Panics
///
/// Panics for [`ModelClass::Arbitrary`]: Theorem 9's `Ω(ln D)` bound
/// applies to *any* deterministic online algorithm, the dual one
/// included. (Monotone arbitrary instances are gated by the general
/// envelope instead — see `AlgoName::proven_upper_bound`.)
#[must_use]
pub fn upper_bound(class: ModelClass) -> Bound {
    match class {
        ModelClass::Roofline => Bound {
            ratio: 1.0 / MU_MAX,
            mu: MU_MAX,
            x: 1.0,
        },
        ModelClass::Communication => {
            let (mu, ratio) = golden_section_min(&communication::ratio_at, 1e-4, MU_MAX, 1e-10);
            let x = communication::x_star(mu).expect("minimizer lies in the feasible region");
            Bound { ratio, mu, x }
        }
        ModelClass::Amdahl => crate::upper_bound(ModelClass::Amdahl),
        ModelClass::General => crate::upper_bound(ModelClass::General),
        ModelClass::Arbitrary => {
            panic!("no constant competitive ratio exists for the arbitrary model (Theorem 9)")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dual_bounds_pin_registry_constants() {
        // The constants AlgoName::Improved23::proven_upper_bound hard-codes,
        // each rounded up at the third decimal.
        let r = upper_bound(ModelClass::Roofline);
        assert!((r.ratio - 2.618_034).abs() < 1e-5, "roofline {}", r.ratio);
        assert!(r.ratio <= 2.619);

        let c = upper_bound(ModelClass::Communication);
        assert!(
            (c.ratio - 3.374_036).abs() < 5e-5,
            "communication {}",
            c.ratio
        );
        assert!(c.ratio <= 3.375);
        assert!((c.mu - 0.331).abs() < 2e-3, "mu* = {}", c.mu);
        assert!((c.x - 0.4873).abs() < 2e-3, "x* = {}", c.x);

        let a = upper_bound(ModelClass::Amdahl);
        assert!((a.ratio - 4.730_577).abs() < 5e-5, "amdahl {}", a.ratio);
        assert!(a.ratio <= 4.731);
        assert!((a.mu - 0.270875).abs() < 2e-3, "mu* = {}", a.mu);

        let g = upper_bound(ModelClass::General);
        assert!((g.ratio - 5.714_311).abs() < 5e-5, "general {}", g.ratio);
        assert!(g.ratio <= 5.715);
        assert!((g.mu - 0.210687).abs() < 2e-3, "mu* = {}", g.mu);
    }

    #[test]
    fn dual_envelope_dominated_by_icpp22_envelope_pointwise() {
        // alpha is smaller (communication) or equal (others) at every
        // feasible mu, so the dual envelope never exceeds the primal.
        for mu in [0.15, 0.2, 0.25, 0.3, 0.32, 0.33] {
            assert!(roofline::ratio_at(mu) <= crate::roofline::ratio_at(mu) + 1e-12);
            assert!(communication::ratio_at(mu) <= crate::communication::ratio_at(mu) + 1e-12);
            assert!(amdahl::ratio_at(mu) <= crate::amdahl::ratio_at(mu) + 1e-12);
            assert!(general::ratio_at(mu) <= crate::general::ratio_at(mu) + 1e-12);
        }
    }

    #[test]
    fn communication_gain_is_the_rounding_term() {
        // At any feasible mu the two envelopes differ by exactly
        // mu·(x/3)/(mu(1-mu)) = x/(3(1-mu)).
        for mu in [0.2, 0.3, 0.331] {
            let x = communication::x_star(mu).unwrap();
            let gap = crate::communication::ratio_at(mu) - communication::ratio_at(mu);
            assert!((gap - x / (3.0 * (1.0 - mu))).abs() < 1e-9, "mu={mu}");
        }
    }

    #[test]
    fn communication_lambda_matches_registry() {
        // lambda = 1 + x*² at the envelope-optimal mu — the registry
        // stores 1.2361.
        let b = upper_bound(ModelClass::Communication);
        let lambda = 1.0 + b.x * b.x;
        assert!((lambda - 1.2361).abs() < 2e-3, "lambda = {lambda}");
    }

    #[test]
    #[should_panic(expected = "no constant competitive ratio")]
    fn arbitrary_has_no_upper_bound() {
        let _ = upper_bound(ModelClass::Arbitrary);
    }
}
