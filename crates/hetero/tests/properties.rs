//! Property tests for the hybrid-platform extension.

use moldable_hetero::{
    hetero_lower_bound, simulate_hetero, HeteroEct, HeteroGraph, HeteroPlatform, HeteroTask,
    MuHetero, Pool,
};
use moldable_model::sample::ParamDistribution;
use moldable_model::ModelClass;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_hetero(seed: u64, n: usize, pf: HeteroPlatform) -> HeteroGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = ParamDistribution::default();
    let mut g = HeteroGraph::new();
    let mut ids = Vec::new();
    for _ in 0..n {
        let cpu = dist.sample(ModelClass::Amdahl, pf.cpus, &mut rng);
        let gpu = dist.sample(ModelClass::Amdahl, pf.gpus, &mut rng);
        ids.push(g.add_task(HeteroTask { cpu, gpu }));
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(0.2) {
                g.add_edge(ids[i], ids[j]).unwrap();
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both hybrid schedulers always produce feasible schedules that
    /// respect the fractional lower bound, and every task lands on
    /// exactly one pool.
    #[test]
    fn hybrid_schedules_are_feasible_and_bounded(
        seed in any::<u64>(),
        n in 1usize..25,
        cpus in 2u32..16,
        gpus in 1u32..8,
    ) {
        let pf = HeteroPlatform { cpus, gpus };
        let g = random_hetero(seed, n, pf);
        let lb = hetero_lower_bound(&g, pf);
        for which in 0..2 {
            let hs = if which == 0 {
                simulate_hetero(&g, pf, &mut MuHetero::default_mu()).unwrap()
            } else {
                simulate_hetero(&g, pf, &mut HeteroEct::new()).unwrap()
            };
            hs.validate(&g, pf).unwrap();
            prop_assert!(hs.makespan >= lb - 1e-9,
                "scheduler {which}: {} < lb {lb}", hs.makespan);
            prop_assert_eq!(hs.cpu.placements.len() + hs.gpu.placements.len(), n);
            // assignment vector agrees with where placements live
            for pl in &hs.cpu.placements {
                prop_assert_eq!(hs.assignment[pl.task.index()], Pool::Cpu);
            }
            for pl in &hs.gpu.placements {
                prop_assert_eq!(hs.assignment[pl.task.index()], Pool::Gpu);
            }
        }
    }

    /// The fractional bound never exceeds the all-on-one-pool bounds
    /// (it optimizes over a superset of assignments).
    #[test]
    fn fractional_bound_below_single_pool_area(seed in any::<u64>(), n in 1usize..20) {
        let pf = HeteroPlatform { cpus: 6, gpus: 3 };
        let g = random_hetero(seed, n, pf);
        let lb = hetero_lower_bound(&g, pf);
        let area_cpu: f64 = g
            .structure()
            .task_ids()
            .map(|t| g.model(t, Pool::Cpu).a_min())
            .sum::<f64>()
            / f64::from(pf.cpus);
        let area_gpu: f64 = g
            .structure()
            .task_ids()
            .map(|t| g.model(t, Pool::Gpu).a_min())
            .sum::<f64>()
            / f64::from(pf.gpus);
        // The path component can exceed single-pool *area*, so compare
        // only the area part: lb is max(path, frac-area); frac-area <=
        // min(all-cpu, all-gpu). Reconstruct: lb <= max(path, min areas).
        let path_only = {
            // per-task best tmin path
            let mut dist = vec![0.0f64; g.n_tasks()];
            let mut c = 0.0f64;
            for t in g.structure().topo_order() {
                let best = g.model(t, Pool::Cpu).t_min(pf.cpus)
                    .min(g.model(t, Pool::Gpu).t_min(pf.gpus));
                let longest = g.structure().preds(t).iter()
                    .map(|p| dist[p.index()]).fold(0.0, f64::max);
                dist[t.index()] = longest + best;
                c = c.max(dist[t.index()]);
            }
            c
        };
        prop_assert!(lb <= path_only.max(area_cpu.min(area_gpu)) + 1e-6);
    }
}
