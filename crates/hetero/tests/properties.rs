//! Property tests for the hybrid-platform extension.
//!
//! Gated behind the non-default `slow-tests` feature: each test sweeps
//! many random instances, which is too slow for the tier-1 suite.

#![cfg(feature = "slow-tests")]

use moldable_hetero::{
    hetero_lower_bound, simulate_hetero, HeteroEct, HeteroGraph, HeteroPlatform, HeteroTask,
    MuHetero, Pool,
};
use moldable_model::rng::{Rng, StdRng};
use moldable_model::sample::ParamDistribution;
use moldable_model::ModelClass;

fn random_hetero(seed: u64, n: usize, pf: HeteroPlatform) -> HeteroGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let dist = ParamDistribution::default();
    let mut g = HeteroGraph::new();
    let mut ids = Vec::new();
    for _ in 0..n {
        let cpu = dist.sample(ModelClass::Amdahl, pf.cpus, &mut rng);
        let gpu = dist.sample(ModelClass::Amdahl, pf.gpus, &mut rng);
        ids.push(g.add_task(HeteroTask { cpu, gpu }));
    }
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(0.2) {
                g.add_edge(ids[i], ids[j]).unwrap();
            }
        }
    }
    g
}

/// Both hybrid schedulers always produce feasible schedules that
/// respect the fractional lower bound, and every task lands on exactly
/// one pool.
#[test]
fn hybrid_schedules_are_feasible_and_bounded() {
    for case in 0u64..64 {
        let mut crng = StdRng::seed_from_u64(0x4E7 ^ case);
        let seed = crng.next_u64();
        let n = crng.gen_range(1usize..25);
        let cpus = crng.gen_range(2u32..16);
        let gpus = crng.gen_range(1u32..8);
        let pf = HeteroPlatform { cpus, gpus };
        let g = random_hetero(seed, n, pf);
        let lb = hetero_lower_bound(&g, pf);
        for which in 0..2 {
            let hs = if which == 0 {
                simulate_hetero(&g, pf, &mut MuHetero::default_mu()).unwrap()
            } else {
                simulate_hetero(&g, pf, &mut HeteroEct::new()).unwrap()
            };
            hs.validate(&g, pf).unwrap();
            assert!(
                hs.makespan >= lb - 1e-9,
                "scheduler {which}: {} < lb {lb}",
                hs.makespan
            );
            assert_eq!(hs.cpu.placements.len() + hs.gpu.placements.len(), n);
            // assignment vector agrees with where placements live
            for pl in &hs.cpu.placements {
                assert_eq!(hs.assignment[pl.task.index()], Pool::Cpu);
            }
            for pl in &hs.gpu.placements {
                assert_eq!(hs.assignment[pl.task.index()], Pool::Gpu);
            }
        }
    }
}

/// The fractional bound never exceeds the all-on-one-pool bounds (it
/// optimizes over a superset of assignments).
#[test]
fn fractional_bound_below_single_pool_area() {
    for case in 0u64..64 {
        let mut crng = StdRng::seed_from_u64(0xF2AC ^ case);
        let seed = crng.next_u64();
        let n = crng.gen_range(1usize..20);
        let pf = HeteroPlatform { cpus: 6, gpus: 3 };
        let g = random_hetero(seed, n, pf);
        let lb = hetero_lower_bound(&g, pf);
        let area_cpu: f64 = g
            .structure()
            .task_ids()
            .map(|t| g.model(t, Pool::Cpu).a_min())
            .sum::<f64>()
            / f64::from(pf.cpus);
        let area_gpu: f64 = g
            .structure()
            .task_ids()
            .map(|t| g.model(t, Pool::Gpu).a_min())
            .sum::<f64>()
            / f64::from(pf.gpus);
        // The path component can exceed single-pool *area*, so compare
        // only the area part: lb is max(path, frac-area); frac-area <=
        // min(all-cpu, all-gpu). Reconstruct: lb <= max(path, min areas).
        let path_only = {
            // per-task best tmin path
            let mut dist = vec![0.0f64; g.n_tasks()];
            let mut c = 0.0f64;
            for t in g.structure().topo_order() {
                let best = g
                    .model(t, Pool::Cpu)
                    .t_min(pf.cpus)
                    .min(g.model(t, Pool::Gpu).t_min(pf.gpus));
                let longest = g
                    .structure()
                    .preds(t)
                    .iter()
                    .map(|p| dist[p.index()])
                    .fold(0.0, f64::max);
                dist[t.index()] = longest + best;
                c = c.max(dist[t.index()]);
            }
            c
        };
        assert!(lb <= path_only.max(area_cpu.min(area_gpu)) + 1e-6);
    }
}
