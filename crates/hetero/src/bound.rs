//! A valid makespan lower bound for the hybrid platform.
//!
//! Lemma 2's two bounds generalize:
//!
//! * **critical path** — weight each task by the best minimum time
//!   over the two pools, `min(t_min^cpu, t_min^gpu)`;
//! * **area** — every schedule assigns each task wholly to one pool,
//!   where it consumes at least its minimum area for that pool; so the
//!   *fractional* relaxation `min_x max(Σ xₜ·a_cᵗ / P_c,
//!   Σ (1−xₜ)·a_gᵗ / P_g)` (with `xₜ ∈ [0,1]`) lower-bounds any
//!   schedule's makespan. The fractional optimum is computed by binary
//!   search on `T` with a greedy feasibility check (tasks sorted by
//!   relative pool cost, at most one split fractionally).

use crate::{HeteroGraph, HeteroPlatform, Pool};

/// `max(fractional area bound, best-pool critical path)`.
///
/// # Panics
///
/// Panics if either pool is empty.
#[must_use]
pub fn hetero_lower_bound(graph: &HeteroGraph, platform: HeteroPlatform) -> f64 {
    assert!(platform.cpus >= 1 && platform.gpus >= 1);
    let structure = graph.structure();
    let n = graph.n_tasks();
    if n == 0 {
        return 0.0;
    }

    // Critical path with best-pool t_min per task.
    let t_best: Vec<f64> = structure
        .task_ids()
        .map(|t| {
            let tc = graph.model(t, Pool::Cpu).t_min(platform.cpus);
            let tg = graph.model(t, Pool::Gpu).t_min(platform.gpus);
            tc.min(tg)
        })
        .collect();
    let mut dist = vec![0.0f64; n];
    let mut c_min = 0.0f64;
    for t in structure.topo_order() {
        let longest = structure
            .preds(t)
            .iter()
            .map(|p| dist[p.index()])
            .fold(0.0, f64::max);
        dist[t.index()] = longest + t_best[t.index()];
        c_min = c_min.max(dist[t.index()]);
    }

    // Fractional area bound.
    let a_c: Vec<f64> = structure
        .task_ids()
        .map(|t| graph.model(t, Pool::Cpu).a_min())
        .collect();
    let a_g: Vec<f64> = structure
        .task_ids()
        .map(|t| graph.model(t, Pool::Gpu).a_min())
        .collect();
    let pc = f64::from(platform.cpus);
    let pg = f64::from(platform.gpus);
    // Order by how much cheaper the CPU is, relatively.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        let ri = a_c[i] / a_g[i].max(1e-300);
        let rj = a_c[j] / a_g[j].max(1e-300);
        ri.total_cmp(&rj)
    });
    // feasible(T): can the CPU take a prefix (fractionally) such that
    // both pools finish their share of the area by T?
    let feasible = |t_cap: f64| -> bool {
        let mut cpu_budget = pc * t_cap;
        let mut gpu_load = 0.0f64;
        for &i in &order {
            if a_c[i] <= cpu_budget {
                cpu_budget -= a_c[i];
            } else {
                // split fractionally: the CPU takes what fits
                let frac = (cpu_budget / a_c[i]).clamp(0.0, 1.0);
                cpu_budget = 0.0;
                gpu_load += (1.0 - frac) * a_g[i];
            }
        }
        gpu_load <= pg * t_cap * (1.0 + 1e-12)
    };
    // Bracket: all-on-best-pool serially is clearly feasible.
    let mut hi = (a_c.iter().sum::<f64>() / pc).max(a_g.iter().sum::<f64>() / pg);
    let mut lo = 0.0f64;
    if hi == 0.0 {
        return c_min;
    }
    debug_assert!(feasible(hi));
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    c_min.max(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeteroTask;
    use moldable_model::SpeedupModel;

    fn t(wc: f64, wg: f64) -> HeteroTask {
        HeteroTask {
            cpu: SpeedupModel::amdahl(wc, 0.0).unwrap(),
            gpu: SpeedupModel::amdahl(wg, 0.0).unwrap(),
        }
    }

    #[test]
    fn single_task_bound_is_best_pool_t_min() {
        let mut g = HeteroGraph::new();
        g.add_task(t(8.0, 40.0));
        let pf = HeteroPlatform { cpus: 4, gpus: 2 };
        // best pool: cpu, t_min = 8/4 = 2; area: all on cpu = 8/4 = 2.
        let lb = hetero_lower_bound(&g, pf);
        assert!((lb - 2.0).abs() < 1e-9, "lb = {lb}");
    }

    #[test]
    fn area_splits_across_pools() {
        // 8 identical tasks, each 4 work on either pool; Pc = 2, Pg = 2.
        // Best split: half the area each side: 4*4/2 = 8.
        let mut g = HeteroGraph::new();
        for _ in 0..8 {
            g.add_task(t(4.0, 4.0));
        }
        let pf = HeteroPlatform { cpus: 2, gpus: 2 };
        let lb = hetero_lower_bound(&g, pf);
        assert!((lb - 8.0).abs() < 1e-6, "lb = {lb}");
    }

    #[test]
    fn bound_respects_pool_affinity() {
        // CPU-only-cheap tasks: the fractional optimum puts only a
        // little on the expensive GPU.
        let mut g = HeteroGraph::new();
        for _ in 0..4 {
            g.add_task(t(2.0, 200.0));
        }
        let pf = HeteroPlatform { cpus: 2, gpus: 2 };
        let lb = hetero_lower_bound(&g, pf);
        // all-on-cpu: 8/2 = 4; mixing in the gpu is worse than 4?
        // moving one task to gpu: max(6/2, 200/2) = 100. So lb ~<= 4.
        assert!(lb <= 4.0 + 1e-6, "lb = {lb}");
        assert!(lb > 3.0, "still must pay most of the cpu area: {lb}");
    }

    #[test]
    fn critical_path_dominates_on_chains() {
        let mut g = HeteroGraph::new();
        let mut prev = None;
        for _ in 0..5 {
            let id = g.add_task(HeteroTask {
                cpu: SpeedupModel::amdahl(4.0, 1.0).unwrap(),
                gpu: SpeedupModel::amdahl(4.0, 2.0).unwrap(),
            });
            if let Some(p) = prev {
                g.add_edge(p, id).unwrap();
            }
            prev = Some(id);
        }
        let pf = HeteroPlatform { cpus: 4, gpus: 4 };
        // per-task best t_min = min(4/4+1, 4/4+2) = 2; chain of 5 -> 10.
        let lb = hetero_lower_bound(&g, pf);
        assert!((lb - 10.0).abs() < 1e-9, "lb = {lb}");
    }

    #[test]
    fn every_simulated_schedule_respects_the_bound() {
        use crate::{simulate_hetero, HeteroEct, MuHetero};
        let mut g = HeteroGraph::new();
        let mut prev = None;
        for i in 0..10 {
            let (wc, wg) = if i % 3 == 0 { (30.0, 5.0) } else { (5.0, 30.0) };
            let id = g.add_task(t(wc, wg));
            if i % 2 == 0 {
                if let Some(p) = prev {
                    g.add_edge(p, id).unwrap();
                }
            }
            prev = Some(id);
        }
        let pf = HeteroPlatform { cpus: 3, gpus: 3 };
        let lb = hetero_lower_bound(&g, pf);
        for mk in [0usize, 1] {
            let makespan = if mk == 0 {
                simulate_hetero(&g, pf, &mut MuHetero::default_mu())
                    .unwrap()
                    .makespan
            } else {
                simulate_hetero(&g, pf, &mut HeteroEct::new())
                    .unwrap()
                    .makespan
            };
            assert!(makespan >= lb - 1e-9, "scheduler {mk}: {makespan} < {lb}");
        }
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = HeteroGraph::new();
        assert_eq!(
            hetero_lower_bound(&g, HeteroPlatform { cpus: 2, gpus: 2 }),
            0.0
        );
    }
}
