//! Online schedulers for the hybrid platform.

use std::collections::VecDeque;

use moldable_core::allocate;
use moldable_graph::TaskId;
use moldable_model::MU_MAX;

use crate::{HeteroPlatform, HeteroTask, Pool};

/// An online policy over two pools: the hybrid analogue of
/// [`moldable_sim::Scheduler`].
pub trait HeteroScheduler {
    /// Called once before the run.
    fn init(&mut self, platform: HeteroPlatform) {
        let _ = platform;
    }
    /// A task became available; both pool models are now known.
    fn release(&mut self, task: TaskId, models: &HeteroTask);
    /// Start tasks now; batch totals must fit the per-pool free counts.
    fn select(&mut self, now: f64, free_cpu: u32, free_gpu: u32) -> Vec<(TaskId, Pool, u32)>;
}

/// Queue entry with per-pool precomputed allocations.
#[derive(Debug, Clone, Copy)]
struct Item {
    task: TaskId,
    cpu_procs: u32,
    cpu_time: f64,
    gpu_procs: u32,
    gpu_time: f64,
}

/// Algorithm 2 applied per pool, with the pool chosen at launch by
/// shorter capped execution time (ties prefer the pool with more free
/// processors). List scheduling over the combined queue.
#[derive(Debug)]
pub struct MuHetero {
    mu: f64,
    /// If only one pool currently fits, start there only when its time
    /// is within `max_stretch` of the other pool's — otherwise wait for
    /// the better pool to free up. `INFINITY` disables deferral (used
    /// by the single-pool baselines, where the other pool never frees).
    max_stretch: f64,
    platform: HeteroPlatform,
    queue: VecDeque<Item>,
}

impl MuHetero {
    /// With an explicit μ.
    ///
    /// # Panics
    ///
    /// Panics if `mu ∉ (0, (3−√5)/2]`.
    #[must_use]
    pub fn new(mu: f64) -> Self {
        assert!(mu > 0.0 && mu <= MU_MAX + 1e-12);
        Self {
            mu,
            max_stretch: 2.0,
            platform: HeteroPlatform { cpus: 1, gpus: 1 },
            queue: VecDeque::new(),
        }
    }

    /// Disable the wait-for-the-better-pool deferral (start on any pool
    /// that fits).
    #[must_use]
    pub fn without_deferral(mut self) -> Self {
        self.max_stretch = f64::INFINITY;
        self
    }

    /// With the general-model μ (no class is assumed across two pools).
    #[must_use]
    pub fn default_mu() -> Self {
        Self::new(moldable_model::ModelClass::General.optimal_mu())
    }
}

impl HeteroScheduler for MuHetero {
    fn init(&mut self, platform: HeteroPlatform) {
        self.platform = platform;
    }

    fn release(&mut self, task: TaskId, models: &HeteroTask) {
        let ac = allocate(&models.cpu, self.platform.cpus, self.mu);
        let ag = allocate(&models.gpu, self.platform.gpus, self.mu);
        self.queue.push_back(Item {
            task,
            cpu_procs: ac.capped,
            cpu_time: models.cpu.time(ac.capped),
            gpu_procs: ag.capped,
            gpu_time: models.gpu.time(ag.capped),
        });
    }

    fn select(&mut self, _now: f64, free_cpu: u32, free_gpu: u32) -> Vec<(TaskId, Pool, u32)> {
        let mut fc = free_cpu;
        let mut fg = free_gpu;
        let mut out = Vec::new();
        self.queue.retain(|it| {
            let cpu_ok = it.cpu_procs <= fc;
            let gpu_ok = it.gpu_procs <= fg;
            let pick = match (cpu_ok, gpu_ok) {
                (true, true) => Some(if it.cpu_time <= it.gpu_time {
                    Pool::Cpu
                } else {
                    Pool::Gpu
                }),
                (true, false) => {
                    (it.cpu_time <= self.max_stretch * it.gpu_time).then_some(Pool::Cpu)
                }
                (false, true) => {
                    (it.gpu_time <= self.max_stretch * it.cpu_time).then_some(Pool::Gpu)
                }
                (false, false) => None,
            };
            match pick {
                Some(Pool::Cpu) => {
                    fc -= it.cpu_procs;
                    out.push((it.task, Pool::Cpu, it.cpu_procs));
                    false
                }
                Some(Pool::Gpu) => {
                    fg -= it.gpu_procs;
                    out.push((it.task, Pool::Gpu, it.gpu_procs));
                    false
                }
                None => true,
            }
        });
        out
    }
}

/// Greedy earliest completion: start the longest-waiting task on the
/// `(pool, p_max ≤ free)` combination with the shortest execution time.
#[derive(Debug, Default)]
pub struct HeteroEct {
    platform: HeteroPlatform,
    queue: VecDeque<(TaskId, HeteroTask)>,
}

impl HeteroEct {
    /// New greedy scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Default for HeteroPlatform {
    fn default() -> Self {
        Self { cpus: 1, gpus: 1 }
    }
}

impl HeteroScheduler for HeteroEct {
    fn init(&mut self, platform: HeteroPlatform) {
        self.platform = platform;
    }

    fn release(&mut self, task: TaskId, models: &HeteroTask) {
        self.queue.push_back((task, models.clone()));
    }

    fn select(&mut self, _now: f64, free_cpu: u32, free_gpu: u32) -> Vec<(TaskId, Pool, u32)> {
        let mut fc = free_cpu;
        let mut fg = free_gpu;
        let mut out = Vec::new();
        while let Some((task, models)) = self.queue.front() {
            let mut best: Option<(f64, Pool, u32)> = None;
            if fc > 0 {
                let p = models.cpu.p_max(fc);
                let t = models.cpu.time(p);
                best = Some((t, Pool::Cpu, p));
            }
            if fg > 0 {
                let p = models.gpu.p_max(fg);
                let t = models.gpu.time(p);
                if best.is_none_or(|(bt, _, _)| t < bt) {
                    best = Some((t, Pool::Gpu, p));
                }
            }
            let Some((_, pool, p)) = best else { break };
            out.push((*task, pool, p));
            match pool {
                Pool::Cpu => fc -= p,
                Pool::Gpu => fg -= p,
            }
            self.queue.pop_front();
        }
        out
    }
}

/// Baseline: everything on one pool (list scheduling with per-pool
/// Algorithm 2 allocations) — what you lose by ignoring the other pool.
#[derive(Debug)]
pub struct CpuOnly(MuHetero);

impl CpuOnly {
    /// New CPU-only baseline.
    #[must_use]
    pub fn new() -> Self {
        Self(MuHetero::default_mu().without_deferral())
    }
}

impl Default for CpuOnly {
    fn default() -> Self {
        Self::new()
    }
}

impl HeteroScheduler for CpuOnly {
    fn init(&mut self, platform: HeteroPlatform) {
        self.0.init(platform);
    }
    fn release(&mut self, task: TaskId, models: &HeteroTask) {
        self.0.release(task, models);
    }
    fn select(&mut self, now: f64, free_cpu: u32, _fg: u32) -> Vec<(TaskId, Pool, u32)> {
        self.0.select(now, free_cpu, 0)
    }
}

/// Baseline: everything on the GPU pool.
#[derive(Debug)]
pub struct GpuOnly(MuHetero);

impl GpuOnly {
    /// New GPU-only baseline.
    #[must_use]
    pub fn new() -> Self {
        Self(MuHetero::default_mu().without_deferral())
    }
}

impl Default for GpuOnly {
    fn default() -> Self {
        Self::new()
    }
}

impl HeteroScheduler for GpuOnly {
    fn init(&mut self, platform: HeteroPlatform) {
        self.0.init(platform);
    }
    fn release(&mut self, task: TaskId, models: &HeteroTask) {
        self.0.release(task, models);
    }
    fn select(&mut self, now: f64, _fc: u32, free_gpu: u32) -> Vec<(TaskId, Pool, u32)> {
        self.0.select(now, 0, free_gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_hetero, HeteroGraph};
    use moldable_model::SpeedupModel;

    fn mixed_graph(n: usize) -> HeteroGraph {
        let mut g = HeteroGraph::new();
        for i in 0..n {
            let (wc, wg) = if i % 2 == 0 { (4.0, 40.0) } else { (40.0, 4.0) };
            g.add_task(HeteroTask {
                cpu: SpeedupModel::amdahl(wc, 0.2).unwrap(),
                gpu: SpeedupModel::amdahl(wg, 0.2).unwrap(),
            });
        }
        g
    }

    #[test]
    fn hybrid_beats_single_pool_on_mixed_workloads() {
        let g = mixed_graph(12);
        let pf = HeteroPlatform { cpus: 6, gpus: 3 };
        let run = |s: &mut dyn HeteroScheduler| {
            let hs = simulate_hetero(&g, pf, s).unwrap();
            hs.validate(&g, pf).unwrap();
            hs.makespan
        };
        let hybrid = run(&mut MuHetero::default_mu());
        let cpu = run(&mut CpuOnly::new());
        let gpu = run(&mut GpuOnly::new());
        assert!(hybrid < cpu, "hybrid {hybrid} vs cpu-only {cpu}");
        assert!(hybrid < gpu, "hybrid {hybrid} vs gpu-only {gpu}");
    }

    #[test]
    fn ect_runs_and_validates() {
        let g = mixed_graph(10);
        let pf = HeteroPlatform { cpus: 4, gpus: 2 };
        let hs = simulate_hetero(&g, pf, &mut HeteroEct::new()).unwrap();
        hs.validate(&g, pf).unwrap();
        // greedy uses both pools on a mixed workload
        assert!(!hs.cpu.placements.is_empty());
        assert!(!hs.gpu.placements.is_empty());
    }

    #[test]
    fn single_pool_baselines_place_everything_on_their_pool() {
        let g = mixed_graph(6);
        let pf = HeteroPlatform { cpus: 4, gpus: 2 };
        let hs = simulate_hetero(&g, pf, &mut CpuOnly::new()).unwrap();
        assert_eq!(hs.cpu.placements.len(), 6);
        assert!(hs.gpu.placements.is_empty());
        let hs = simulate_hetero(&g, pf, &mut GpuOnly::new()).unwrap();
        assert_eq!(hs.gpu.placements.len(), 6);
    }
}
