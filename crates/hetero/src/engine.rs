//! Event-driven simulation over two processor pools.
//!
//! A compact sibling of `moldable_sim`'s engine: the same online
//! revelation model (tasks appear when their predecessors finish), but
//! a start decision is `(task, pool, allocation)` and capacity is
//! tracked per pool.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use moldable_graph::{Frontier, TaskId};
use moldable_sim::{Placement, Schedule, ValidationError};

use crate::{HeteroGraph, HeteroPlatform, HeteroScheduler, Pool};

/// Why a hybrid simulation failed (scheduler bugs, as in the
/// homogeneous engine).
#[derive(Debug, Clone, PartialEq)]
pub enum HeteroError {
    /// Started a task that was not available.
    NotAvailable(TaskId),
    /// Zero-processor allocation.
    ZeroProcs(TaskId),
    /// Batch exceeded a pool's free processors.
    Oversubscribed {
        /// Offending task.
        task: TaskId,
        /// The pool that was oversubscribed.
        pool: Pool,
        /// Requested allocation.
        want: u32,
        /// Free processors in that pool.
        free: u32,
    },
    /// Available work exists but nothing runs and nothing was started.
    Stuck {
        /// Time progress stopped.
        time: f64,
    },
}

impl fmt::Display for HeteroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotAvailable(t) => write!(f, "task {t} not available"),
            Self::ZeroProcs(t) => write!(f, "task {t} started on zero processors"),
            Self::Oversubscribed {
                task,
                pool,
                want,
                free,
            } => {
                write!(f, "{task} wants {want} {pool} procs, only {free} free")
            }
            Self::Stuck { time } => write!(f, "no progress at t={time}"),
        }
    }
}

impl std::error::Error for HeteroError {}

/// The result of a hybrid run: one [`Schedule`] per pool plus the
/// pool assignment, sharing a common clock.
#[derive(Debug, Clone)]
pub struct HeteroSchedule {
    /// Placements on the CPU pool.
    pub cpu: Schedule,
    /// Placements on the GPU pool.
    pub gpu: Schedule,
    /// Pool chosen per task.
    pub assignment: Vec<Pool>,
    /// Overall completion time.
    pub makespan: f64,
}

impl HeteroSchedule {
    /// Validate: per-pool capacity, graph-wide precedence, completeness,
    /// and model-consistent durations.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(
        &self,
        graph: &HeteroGraph,
        platform: HeteroPlatform,
    ) -> Result<(), ValidationError> {
        let tol = 1e-9 * self.makespan.max(1.0);
        self.cpu.check_capacity(tol)?;
        self.gpu.check_capacity(tol)?;
        // completeness + durations + precedence across pools
        let n = graph.n_tasks();
        let mut place: Vec<Option<&Placement>> = vec![None; n];
        for (pool, sched) in [(Pool::Cpu, &self.cpu), (Pool::Gpu, &self.gpu)] {
            for pl in &sched.placements {
                if pl.task.index() >= n {
                    return Err(ValidationError::ForeignTask(pl.task));
                }
                if place[pl.task.index()].is_some() {
                    return Err(ValidationError::DuplicateTask(pl.task));
                }
                if pl.procs == 0 || pl.procs > platform.size(pool) {
                    return Err(ValidationError::BadAllocation {
                        task: pl.task,
                        procs: pl.procs,
                    });
                }
                let want = graph.model(pl.task, pool).time(pl.procs);
                if (pl.duration() - want).abs() > 1e-9 * want.max(1.0) {
                    return Err(ValidationError::WrongDuration {
                        task: pl.task,
                        got: pl.duration(),
                        want,
                    });
                }
                place[pl.task.index()] = Some(pl);
            }
        }
        for t in graph.structure().task_ids() {
            let Some(pl) = place[t.index()] else {
                return Err(ValidationError::MissingTask(t));
            };
            for &p in graph.structure().preds(t) {
                let pred = place[p.index()].expect("checked above");
                if pl.start < pred.end - tol {
                    return Err(ValidationError::PrecedenceViolated { task: t, pred: p });
                }
            }
        }
        Ok(())
    }
}

struct Ev {
    time: f64,
    seq: u64,
    task: TaskId,
    pool: Pool,
    procs: u32,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Run `graph` on the hybrid `platform` under `scheduler`.
///
/// # Errors
///
/// Returns a [`HeteroError`] on scheduler misbehaviour.
///
/// # Panics
///
/// Panics if either pool is empty.
pub fn simulate_hetero(
    graph: &HeteroGraph,
    platform: HeteroPlatform,
    scheduler: &mut dyn HeteroScheduler,
) -> Result<HeteroSchedule, HeteroError> {
    assert!(
        platform.cpus >= 1 && platform.gpus >= 1,
        "both pools must be non-empty"
    );
    scheduler.init(platform);
    // Freeze a CSR snapshot for the frontier; O(V + E) once per run.
    let structure = graph.structure().clone().freeze();
    let structure = &structure;
    let mut frontier = Frontier::new(structure);
    let n = graph.n_tasks();

    let mut available = vec![false; n];
    let mut started = vec![false; n];
    let mut assignment = vec![Pool::Cpu; n];
    let mut cpu_placements: Vec<Placement> = Vec::new();
    let mut gpu_placements: Vec<Placement> = Vec::new();
    let mut free_cpu = platform.cpus;
    let mut free_gpu = platform.gpus;
    let mut heap: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut time = 0.0f64;

    for t in frontier.initial(structure) {
        available[t.index()] = true;
        scheduler.release(
            t,
            &crate::HeteroTask {
                cpu: graph.model(t, Pool::Cpu).clone(),
                gpu: graph.model(t, Pool::Gpu).clone(),
            },
        );
    }

    macro_rules! decide {
        () => {
            loop {
                let picks = scheduler.select(time, free_cpu, free_gpu);
                if picks.is_empty() {
                    break;
                }
                for (t, pool, p) in picks {
                    if t.index() >= n || !available[t.index()] || started[t.index()] {
                        return Err(HeteroError::NotAvailable(t));
                    }
                    if p == 0 {
                        return Err(HeteroError::ZeroProcs(t));
                    }
                    let free = match pool {
                        Pool::Cpu => &mut free_cpu,
                        Pool::Gpu => &mut free_gpu,
                    };
                    if p > *free {
                        return Err(HeteroError::Oversubscribed {
                            task: t,
                            pool,
                            want: p,
                            free: *free,
                        });
                    }
                    *free -= p;
                    started[t.index()] = true;
                    assignment[t.index()] = pool;
                    let dur = graph.model(t, pool).time(p);
                    let pl = Placement {
                        task: t,
                        start: time,
                        end: time + dur,
                        procs: p,
                        proc_ranges: Vec::new(),
                        released: time,
                    };
                    match pool {
                        Pool::Cpu => cpu_placements.push(pl),
                        Pool::Gpu => gpu_placements.push(pl),
                    }
                    heap.push(Reverse(Ev {
                        time: time + dur,
                        seq,
                        task: t,
                        pool,
                        procs: p,
                    }));
                    seq += 1;
                }
            }
        };
    }

    decide!();
    if heap.is_empty() && !frontier.all_done() && n > 0 {
        return Err(HeteroError::Stuck { time: 0.0 });
    }
    while let Some(Reverse(ev)) = heap.pop() {
        time = ev.time;
        let mut batch = vec![(ev.task, ev.pool, ev.procs)];
        while let Some(Reverse(peek)) = heap.peek() {
            if peek.time == time {
                let Reverse(e) = heap.pop().expect("peeked");
                batch.push((e.task, e.pool, e.procs));
            } else {
                break;
            }
        }
        for &(_, pool, procs) in &batch {
            match pool {
                Pool::Cpu => free_cpu += procs,
                Pool::Gpu => free_gpu += procs,
            }
        }
        for &(t, _, _) in &batch {
            for s in frontier.complete(structure, t) {
                available[s.index()] = true;
                scheduler.release(
                    s,
                    &crate::HeteroTask {
                        cpu: graph.model(s, Pool::Cpu).clone(),
                        gpu: graph.model(s, Pool::Gpu).clone(),
                    },
                );
            }
        }
        decide!();
        if heap.is_empty() && !frontier.all_done() {
            return Err(HeteroError::Stuck { time });
        }
    }

    let mk = |placements: Vec<Placement>, p_total: u32| {
        let makespan = placements.iter().map(|p| p.end).fold(0.0, f64::max);
        Schedule {
            p_total,
            placements,
            makespan,
        }
    };
    let cpu = mk(cpu_placements, platform.cpus);
    let gpu = mk(gpu_placements, platform.gpus);
    let makespan = cpu.makespan.max(gpu.makespan);
    Ok(HeteroSchedule {
        cpu,
        gpu,
        assignment,
        makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HeteroTask, MuHetero};
    use moldable_model::SpeedupModel;

    fn platform() -> HeteroPlatform {
        HeteroPlatform { cpus: 4, gpus: 2 }
    }

    fn cpu_friendly() -> HeteroTask {
        HeteroTask {
            cpu: SpeedupModel::amdahl(4.0, 0.1).unwrap(),
            gpu: SpeedupModel::amdahl(40.0, 1.0).unwrap(),
        }
    }

    fn gpu_friendly() -> HeteroTask {
        HeteroTask {
            cpu: SpeedupModel::amdahl(40.0, 1.0).unwrap(),
            gpu: SpeedupModel::amdahl(4.0, 0.1).unwrap(),
        }
    }

    #[test]
    fn affinity_drives_pool_choice() {
        let mut g = HeteroGraph::new();
        let c = g.add_task(cpu_friendly());
        let u = g.add_task(gpu_friendly());
        let mut s = MuHetero::default_mu();
        let hs = simulate_hetero(&g, platform(), &mut s).unwrap();
        hs.validate(&g, platform()).unwrap();
        assert_eq!(hs.assignment[c.index()], Pool::Cpu);
        assert_eq!(hs.assignment[u.index()], Pool::Gpu);
        // they run concurrently on disjoint pools
        assert_eq!(hs.cpu.placements.len(), 1);
        assert_eq!(hs.gpu.placements.len(), 1);
        assert_eq!(hs.cpu.placements[0].start, 0.0);
        assert_eq!(hs.gpu.placements[0].start, 0.0);
    }

    #[test]
    fn precedence_crosses_pools() {
        let mut g = HeteroGraph::new();
        let a = g.add_task(cpu_friendly());
        let b = g.add_task(gpu_friendly());
        g.add_edge(a, b).unwrap();
        let mut s = MuHetero::default_mu();
        let hs = simulate_hetero(&g, platform(), &mut s).unwrap();
        hs.validate(&g, platform()).unwrap();
        let a_end = hs.cpu.placements[0].end;
        let b_start = hs.gpu.placements[0].start;
        assert!((a_end - b_start).abs() < 1e-12, "b starts when a finishes");
    }

    #[test]
    fn oversubscription_is_caught() {
        struct Bad;
        impl crate::HeteroScheduler for Bad {
            fn release(&mut self, _t: TaskId, _task: &HeteroTask) {}
            fn select(&mut self, _now: f64, _fc: u32, _fg: u32) -> Vec<(TaskId, Pool, u32)> {
                vec![(TaskId(0), Pool::Gpu, 99)]
            }
        }
        let mut g = HeteroGraph::new();
        g.add_task(cpu_friendly());
        let err = simulate_hetero(&g, platform(), &mut Bad).unwrap_err();
        assert!(matches!(
            err,
            HeteroError::Oversubscribed {
                pool: Pool::Gpu,
                ..
            }
        ));
    }

    #[test]
    fn lazy_scheduler_is_stuck() {
        struct Lazy;
        impl crate::HeteroScheduler for Lazy {
            fn release(&mut self, _t: TaskId, _task: &HeteroTask) {}
            fn select(&mut self, _now: f64, _fc: u32, _fg: u32) -> Vec<(TaskId, Pool, u32)> {
                Vec::new()
            }
        }
        let mut g = HeteroGraph::new();
        g.add_task(cpu_friendly());
        g.add_task(cpu_friendly());
        // A lazy scheduler starts nothing: the engine reports Stuck
        // (the heap is empty and the frontier is not done).
        let err = simulate_hetero(&g, platform(), &mut Lazy).unwrap_err();
        assert!(matches!(err, HeteroError::Stuck { .. }));
    }

    #[test]
    fn validate_catches_cross_pool_duplicates() {
        let mut g = HeteroGraph::new();
        let a = g.add_task(cpu_friendly());
        let mut s = MuHetero::default_mu();
        let mut hs = simulate_hetero(&g, platform(), &mut s).unwrap();
        // forge a duplicate of task a on the other pool
        let mut dup = hs.cpu.placements[0].clone();
        dup.end = dup.start + g.model(a, Pool::Gpu).time(dup.procs);
        hs.gpu.placements.push(dup);
        let err = hs.validate(&g, platform()).unwrap_err();
        assert_eq!(err, ValidationError::DuplicateTask(a));
    }
}
