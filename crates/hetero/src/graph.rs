//! Hybrid platform and task-graph types.
//!
//! Structure (edges, topological order) is delegated to
//! [`moldable_graph::TaskGraph`]; this module adds the second speedup
//! model per task.

use moldable_graph::{GraphBuilder, GraphError, TaskId};
use moldable_model::SpeedupModel;

/// A platform with two pools of identical processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeteroPlatform {
    /// Number of CPU cores.
    pub cpus: u32,
    /// Number of GPU devices (each counted as one "processor" of the
    /// GPU pool; a task's GPU speedup model is over devices).
    pub gpus: u32,
}

impl HeteroPlatform {
    /// Pool size for `pool`.
    #[must_use]
    pub fn size(self, pool: Pool) -> u32 {
        match pool {
            Pool::Cpu => self.cpus,
            Pool::Gpu => self.gpus,
        }
    }
}

/// Which pool a task executes on (chosen at launch, fixed thereafter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pool {
    /// The CPU pool.
    Cpu,
    /// The GPU pool.
    Gpu,
}

impl Pool {
    /// Both pools.
    #[must_use]
    pub fn both() -> [Pool; 2] {
        [Pool::Cpu, Pool::Gpu]
    }
}

impl std::fmt::Display for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Pool::Cpu => "cpu",
            Pool::Gpu => "gpu",
        })
    }
}

/// A moldable task with one speedup model per pool.
#[derive(Debug, Clone)]
pub struct HeteroTask {
    /// Execution-time function on `p` CPU cores.
    pub cpu: SpeedupModel,
    /// Execution-time function on `p` GPU devices.
    pub gpu: SpeedupModel,
}

impl HeteroTask {
    /// The model for `pool`.
    #[must_use]
    pub fn model(&self, pool: Pool) -> &SpeedupModel {
        match pool {
            Pool::Cpu => &self.cpu,
            Pool::Gpu => &self.gpu,
        }
    }
}

/// A DAG of hybrid moldable tasks.
///
/// Internally the CPU models live in a [`GraphBuilder`] (which also
/// owns the structure) and the GPU models in a parallel vector. The
/// hetero engine freezes a CSR snapshot per run; this type stays
/// mutable so platforms can be assembled incrementally.
#[derive(Debug, Clone, Default)]
pub struct HeteroGraph {
    structure: GraphBuilder,
    gpu_models: Vec<SpeedupModel>,
}

impl HeteroGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task; returns its id.
    pub fn add_task(&mut self, task: HeteroTask) -> TaskId {
        let id = self.structure.add_task(task.cpu);
        self.gpu_models.push(task.gpu);
        id
    }

    /// Add the precedence edge `from → to`.
    ///
    /// # Errors
    ///
    /// Same contract as [`GraphBuilder::add_edge`].
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) -> Result<(), GraphError> {
        self.structure.add_edge(from, to)
    }

    /// Number of tasks.
    #[must_use]
    pub fn n_tasks(&self) -> usize {
        self.structure.n_tasks()
    }

    /// Model of `t` on `pool`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn model(&self, t: TaskId, pool: Pool) -> &SpeedupModel {
        match pool {
            Pool::Cpu => self.structure.model(t),
            Pool::Gpu => &self.gpu_models[t.index()],
        }
    }

    /// The underlying structure (edges, topological order, sources).
    #[must_use]
    pub fn structure(&self) -> &GraphBuilder {
        &self.structure
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> HeteroTask {
        HeteroTask {
            cpu: SpeedupModel::amdahl(8.0, 1.0).unwrap(),
            gpu: SpeedupModel::amdahl(2.0, 0.1).unwrap(),
        }
    }

    #[test]
    fn models_are_pool_specific() {
        let mut g = HeteroGraph::new();
        let a = g.add_task(task());
        assert_eq!(g.model(a, Pool::Cpu).time(1), 9.0);
        assert!((g.model(a, Pool::Gpu).time(1) - 2.1).abs() < 1e-12);
    }

    #[test]
    fn structure_is_shared() {
        let mut g = HeteroGraph::new();
        let a = g.add_task(task());
        let b = g.add_task(task());
        g.add_edge(a, b).unwrap();
        assert_eq!(g.structure().succs(a), &[b]);
        assert!(g.add_edge(b, a).is_err());
    }

    #[test]
    fn platform_and_pool_helpers() {
        let p = HeteroPlatform { cpus: 16, gpus: 4 };
        assert_eq!(p.size(Pool::Cpu), 16);
        assert_eq!(p.size(Pool::Gpu), 4);
        assert_eq!(Pool::Cpu.to_string(), "cpu");
        assert_eq!(Pool::both().len(), 2);
    }
}
