//! Extension: online scheduling of moldable task graphs on *hybrid*
//! platforms with two processor pools (CPUs and GPUs).
//!
//! The paper's related work cites Canon, Marchal, Simon & Vivien's
//! online scheduling on heterogeneous platforms (but without moldable
//! tasks); its conclusion calls for "extending to other online
//! scheduling settings". This crate combines the two: every task is
//! moldable *within* a pool (a [`SpeedupModel`](moldable_model::SpeedupModel)
//! per pool) and the
//! online scheduler must pick, at launch, both a pool and an
//! allocation — non-preemptively, with the same online revelation
//! model as the homogeneous case.
//!
//! No constant competitive ratio is claimed here (none is known for
//! this combination); the crate provides the machinery — platform,
//! graph, simulator, schedulers, and a *valid* fractional lower bound —
//! and the `hetero` experiment compares the pool-choice rules.

#![forbid(unsafe_code)]

mod bound;
mod engine;
mod graph;
mod sched;

pub use bound::hetero_lower_bound;
pub use engine::{simulate_hetero, HeteroError, HeteroSchedule};
pub use graph::{HeteroGraph, HeteroPlatform, HeteroTask, Pool};
pub use sched::{CpuOnly, GpuOnly, HeteroEct, HeteroScheduler, MuHetero};

#[cfg(test)]
mod tests {
    use super::*;
    use moldable_model::SpeedupModel;

    /// End-to-end smoke: everything exported works together.
    #[test]
    fn end_to_end_smoke() {
        let platform = HeteroPlatform { cpus: 8, gpus: 2 };
        let mut g = HeteroGraph::new();
        // A CPU-friendly task and a GPU-friendly one, in a chain.
        let a = g.add_task(HeteroTask {
            cpu: SpeedupModel::amdahl(8.0, 0.5).unwrap(),
            gpu: SpeedupModel::amdahl(32.0, 4.0).unwrap(),
        });
        let b = g.add_task(HeteroTask {
            cpu: SpeedupModel::amdahl(64.0, 2.0).unwrap(),
            gpu: SpeedupModel::amdahl(4.0, 0.1).unwrap(),
        });
        g.add_edge(a, b).unwrap();

        let mut sched = MuHetero::default_mu();
        let s = simulate_hetero(&g, platform, &mut sched).unwrap();
        s.validate(&g, platform).unwrap();
        assert!(s.makespan > 0.0);
        assert!(s.makespan >= hetero_lower_bound(&g, platform) - 1e-9);
    }
}
