//! The `.mtg` (moldable task graph) text format.
//!
//! A minimal line-oriented format so workflows can be stored in files
//! and fed to the CLI:
//!
//! ```text
//! # tiled solve, exported 2026-07-04
//! p 64                         # optional platform-size hint
//! task 0 amdahl(w=10, d=1)     # ids must be dense, in order
//! task 1 roofline(w=5, pbar=4)
//! edge 0 1                     # 0 -> 1
//! ```
//!
//! `#` starts a comment (whole-line or trailing); blank lines are
//! ignored. Model specs use the [`moldable_model`] textual syntax.

use std::fmt;

use moldable_model::{ParseError, SpeedupModel};

use crate::{GraphBuilder, GraphError, TaskGraph, TaskId};

/// Why a workflow file failed to load. Every variant carries the
/// 1-based line number.
#[derive(Debug)]
pub enum WorkflowError {
    /// Line is not `p`, `task`, or `edge`.
    UnknownDirective(usize, String),
    /// `task` lines must declare ids `0, 1, 2, …` in order.
    NonDenseTaskId(usize, String),
    /// The model spec on a `task` line failed to parse.
    BadModel(usize, ParseError),
    /// An `edge` line is malformed or references unknown tasks.
    BadEdge(usize, String),
    /// The edge was rejected by the graph (cycle, duplicate…).
    Graph(usize, GraphError),
    /// The `p` directive is malformed.
    BadPlatform(usize, String),
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownDirective(l, s) => write!(f, "line {l}: unknown directive `{s}`"),
            Self::NonDenseTaskId(l, s) => {
                write!(
                    f,
                    "line {l}: task ids must be dense and in order, got `{s}`"
                )
            }
            Self::BadModel(l, e) => write!(f, "line {l}: {e}"),
            Self::BadEdge(l, s) => write!(f, "line {l}: bad edge `{s}`"),
            Self::Graph(l, e) => write!(f, "line {l}: {e}"),
            Self::BadPlatform(l, s) => write!(f, "line {l}: bad platform size `{s}`"),
        }
    }
}

impl std::error::Error for WorkflowError {}

/// Parse the `.mtg` format. Returns the graph and the optional
/// platform-size hint from a `p` directive.
///
/// # Errors
///
/// Returns the first [`WorkflowError`] encountered, with its line.
pub fn parse_workflow(text: &str) -> Result<(TaskGraph, Option<u32>), WorkflowError> {
    // File input is untrusted: go through the checked builder API so
    // cycles, duplicates, and unknown ids are rejected with line info.
    let mut graph = GraphBuilder::new();
    let mut p_hint = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (directive, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match directive.to_ascii_lowercase().as_str() {
            "p" => {
                p_hint = Some(
                    rest.parse::<u32>()
                        .ok()
                        .filter(|&p| p >= 1)
                        .ok_or_else(|| WorkflowError::BadPlatform(lineno, rest.to_string()))?,
                );
            }
            "task" => {
                let (id_str, spec) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| WorkflowError::NonDenseTaskId(lineno, rest.to_string()))?;
                let id: u32 = id_str
                    .parse()
                    .map_err(|_| WorkflowError::NonDenseTaskId(lineno, id_str.to_string()))?;
                if id as usize != graph.n_tasks() {
                    return Err(WorkflowError::NonDenseTaskId(lineno, id_str.to_string()));
                }
                let model: SpeedupModel = spec
                    .trim()
                    .parse()
                    .map_err(|e| WorkflowError::BadModel(lineno, e))?;
                let _ = graph.add_task(model);
            }
            "edge" => {
                let mut it = rest.split_whitespace();
                let (Some(a), Some(b), None) = (it.next(), it.next(), it.next()) else {
                    return Err(WorkflowError::BadEdge(lineno, rest.to_string()));
                };
                let a: u32 = a
                    .parse()
                    .map_err(|_| WorkflowError::BadEdge(lineno, rest.to_string()))?;
                let b: u32 = b
                    .parse()
                    .map_err(|_| WorkflowError::BadEdge(lineno, rest.to_string()))?;
                graph
                    .add_edge(TaskId(a), TaskId(b))
                    .map_err(|e| WorkflowError::Graph(lineno, e))?;
            }
            other => return Err(WorkflowError::UnknownDirective(lineno, other.to_string())),
        }
    }
    Ok((graph.freeze(), p_hint))
}

impl TaskGraph {
    /// Render the graph in the `.mtg` format (re-parseable, except for
    /// closure-based models which have no textual form).
    #[must_use]
    pub fn to_workflow(&self, p_hint: Option<u32>) -> String {
        let mut out = String::new();
        if let Some(p) = p_hint {
            out.push_str(&format!("p {p}\n"));
        }
        for t in self.task_ids() {
            out.push_str(&format!("task {} {}\n", t.0, self.model(t).to_spec()));
        }
        for t in self.task_ids() {
            for s in self.succs(t) {
                out.push_str(&format!("edge {} {}\n", t.0, s.0));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r"
# a small workflow
p 16
task 0 amdahl(w=10, d=1)
task 1 roofline(w=5, pbar=4)  # trailing comment
task 2 comm(w=8, c=0.25)
edge 0 1
edge 0 2
";

    #[test]
    fn parses_sample() {
        let (g, p) = parse_workflow(SAMPLE).unwrap();
        assert_eq!(p, Some(16));
        assert_eq!(g.n_tasks(), 3);
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.succs(TaskId(0)), &[TaskId(1), TaskId(2)]);
        assert_eq!(g.model(TaskId(0)).time(1), 11.0);
    }

    #[test]
    fn roundtrip() {
        let (g, _) = parse_workflow(SAMPLE).unwrap();
        let text = g.to_workflow(Some(16));
        let (g2, p2) = parse_workflow(&text).unwrap();
        assert_eq!(p2, Some(16));
        assert_eq!(g2.n_tasks(), g.n_tasks());
        assert_eq!(g2.n_edges(), g.n_edges());
        for t in g.task_ids() {
            for q in 1..=16 {
                assert_eq!(g.model(t).time(q), g2.model(t).time(q));
            }
            assert_eq!(g.succs(t), g2.succs(t));
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_workflow("task 0 amdahl(w=1)\nfoo bar\n").unwrap_err();
        assert!(
            matches!(err, WorkflowError::UnknownDirective(2, _)),
            "{err}"
        );

        let err = parse_workflow("task 1 amdahl(w=1)\n").unwrap_err();
        assert!(matches!(err, WorkflowError::NonDenseTaskId(1, _)));

        let err = parse_workflow("task 0 amdahl(w=)\n").unwrap_err();
        assert!(matches!(err, WorkflowError::BadModel(1, _)));

        let err = parse_workflow("task 0 amdahl(w=1)\nedge 0\n").unwrap_err();
        assert!(matches!(err, WorkflowError::BadEdge(2, _)));

        let err = parse_workflow("task 0 amdahl(w=1)\nedge 0 7\n").unwrap_err();
        assert!(
            matches!(err, WorkflowError::Graph(2, GraphError::UnknownTask(_))),
            "{err}"
        );

        let err = parse_workflow("task 0 amdahl(w=1)\ntask 1 amdahl(w=1)\nedge 0 1\nedge 1 0\n")
            .unwrap_err();
        assert!(matches!(
            err,
            WorkflowError::Graph(4, GraphError::WouldCycle(..))
        ));

        let err = parse_workflow("p zero\n").unwrap_err();
        assert!(matches!(err, WorkflowError::BadPlatform(1, _)));
    }

    #[test]
    fn empty_and_comment_only_files_are_empty_graphs() {
        let (g, p) = parse_workflow("# nothing here\n\n").unwrap();
        assert_eq!(g.n_tasks(), 0);
        assert_eq!(p, None);
    }
}
