//! Workflow-trace import: DOT and JSON workflow files.
//!
//! The generators in [`crate::gen`] produce *synthetic* shapes; real
//! scheduler studies (Beránek et al., *Analysis of Workflow Schedulers
//! in Simulated Distributed Environments*) replay traces of actual
//! workflows. This module imports two common trace encodings into the
//! same frozen [`TaskGraph`] form the rest of the stack consumes:
//!
//! * **DOT** (a pragmatic subset): `digraph { a [weight=2]; a -> b; }`
//!   with `//` and `#` line comments, quoted or bare node names,
//!   optional `weight=` node attributes (default 1), edge chains
//!   (`a -> b -> c`), and `graph`/`node`/`edge` default-attribute
//!   statements ignored.
//! * **JSON** (a wfcommons-like schema): `{"name": …, "tasks":
//!   [{"id": "t0", "weight": 3.5, "parents": ["t1"], "children":
//!   [...]}]}` — `parents` and `children` both contribute edges,
//!   unknown keys are skipped, and `runtime` is accepted as a weight
//!   alias.
//!
//! Imported traces are *untrusted input* and pass the same guard
//! rails as the synthetic shapes in [`crate::gen::by_name`]: the task
//! count is bounded by [`TraceLimits::max_tasks`] **during** the
//! parse (a hostile file is rejected before its tasks materialize,
//! mirroring [`crate::gen::estimated_tasks`]'s pre-construction
//! check), ids must fit the `u32` task-id space, and edges go through
//! the checked [`GraphBuilder`] so cycles and duplicates surface as
//! structured [`TraceError`]s, never panics.
//!
//! Model assignment mirrors the generators exactly: the trace
//! supplies topology and relative weights, and
//! [`WorkflowTrace::into_graph`] samples per-task speedup models from
//! the default [`ParamDistribution`] of a [`ModelClass`], scaled by
//! the trace weight, under a caller seed (same arguments →
//! byte-identical graph).

use std::collections::HashMap;
use std::fmt;

use moldable_model::rng::StdRng;
use moldable_model::sample::ParamDistribution;
use moldable_model::ModelClass;

use crate::gen::{self, TaskCtx};
use crate::{GraphBuilder, GraphError, TaskGraph, TaskId};

/// Guard rails applied while parsing a trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceLimits {
    /// Reject traces declaring more tasks than this. The effective
    /// bound is `min(max_tasks, u32::MAX)` — the task-id space caps
    /// everything, exactly as for generated shapes.
    pub max_tasks: u64,
}

impl Default for TraceLimits {
    fn default() -> Self {
        Self {
            max_tasks: u64::from(u32::MAX),
        }
    }
}

impl TraceLimits {
    /// The binding task bound: the configured limit clamped to the
    /// `u32` id space.
    #[must_use]
    pub fn effective_max_tasks(&self) -> u64 {
        self.max_tasks.min(u64::from(u32::MAX))
    }
}

/// Structured import failures; every variant names the offending line.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// Syntax error in the trace text.
    Parse {
        /// 1-based line of the problem.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A task id was declared twice (JSON format; DOT merges).
    DuplicateTask {
        /// 1-based line of the second declaration.
        line: usize,
        /// The repeated id.
        id: String,
    },
    /// An edge references a task the trace never declares.
    UnknownTask {
        /// 1-based line of the reference.
        line: usize,
        /// The unknown id.
        id: String,
    },
    /// The trace declares more tasks than the configured limit — the
    /// analogue of the pre-construction `estimated_tasks` check for
    /// synthetic shapes; detected mid-parse, before the excess
    /// materializes.
    TooManyTasks {
        /// Tasks seen when the limit broke.
        tasks: u64,
        /// The limit it broke.
        limit: u64,
    },
    /// A task weight is non-finite or not positive.
    BadWeight {
        /// 1-based line of the weight.
        line: usize,
        /// The offending task id.
        id: String,
    },
    /// The edge was rejected by the graph builder (cycle, duplicate…).
    Graph {
        /// 1-based line of the edge.
        line: usize,
        /// The builder's rejection.
        source: GraphError,
    },
    /// The trace declares no tasks.
    Empty,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            Self::DuplicateTask { line, id } => {
                write!(f, "line {line}: task `{id}` declared twice")
            }
            Self::UnknownTask { line, id } => {
                write!(f, "line {line}: edge references unknown task `{id}`")
            }
            Self::TooManyTasks { tasks, limit } => {
                write!(f, "trace has {tasks}+ tasks, more than the limit {limit}")
            }
            Self::BadWeight { line, id } => {
                write!(f, "line {line}: task `{id}` has a non-positive weight")
            }
            Self::Graph { line, source } => write!(f, "line {line}: {source}"),
            Self::Empty => write!(f, "trace declares no tasks"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Which trace encoding to parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// The DOT subset.
    Dot,
    /// The JSON workflow schema.
    Json,
}

impl TraceFormat {
    /// Guess the format from the text: JSON documents start with `{`.
    #[must_use]
    pub fn sniff(text: &str) -> Self {
        match text.trim_start().as_bytes().first() {
            Some(b'{') => Self::Json,
            _ => Self::Dot,
        }
    }
}

#[derive(Debug, Clone)]
struct TraceEdge {
    from: u32,
    to: u32,
    line: usize,
}

/// A parsed workflow trace: topology plus relative task weights,
/// not yet bound to speedup models.
#[derive(Debug, Clone)]
pub struct WorkflowTrace {
    /// Workflow name, when the trace declares one.
    pub name: Option<String>,
    task_names: Vec<String>,
    weights: Vec<f64>,
    edges: Vec<TraceEdge>,
}

impl WorkflowTrace {
    /// Number of tasks.
    #[must_use]
    pub fn n_tasks(&self) -> usize {
        self.task_names.len()
    }

    /// Number of edges (before deduplication by the builder).
    #[must_use]
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// The trace-level name of task `i` (declaration order).
    #[must_use]
    pub fn task_name(&self, i: usize) -> &str {
        &self.task_names[i]
    }

    /// The relative weight of task `i`.
    #[must_use]
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Bind the trace to speedup models and freeze it: tasks keep
    /// their declaration order as dense ids, models are sampled from
    /// the default distribution of `class` scaled by each task's
    /// weight (the exact scheme of [`gen::by_name`]), and edges go
    /// through the checked builder so cycles surface as
    /// [`TraceError::Graph`].
    ///
    /// # Errors
    ///
    /// [`TraceError::Empty`] for a task-less trace,
    /// [`TraceError::Graph`] for cyclic or duplicate edges.
    pub fn into_graph(
        &self,
        class: ModelClass,
        p_total: u32,
        seed: u64,
    ) -> Result<TaskGraph, TraceError> {
        if self.task_names.is_empty() {
            return Err(TraceError::Empty);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = ParamDistribution::default();
        let mut assign = gen::weighted_sampler(class, dist, p_total, &mut rng);
        let mut b = GraphBuilder::new();
        for (i, &w) in self.weights.iter().enumerate() {
            b.add_task(assign(TaskCtx {
                index: i,
                kind: "trace",
                weight: w,
            }));
        }
        for e in &self.edges {
            b.add_edge(TaskId(e.from), TaskId(e.to))
                .map_err(|source| TraceError::Graph {
                    line: e.line,
                    source,
                })?;
        }
        Ok(b.freeze())
    }
}

/// Parse a trace in the given (or sniffed) format under `limits`.
///
/// # Errors
///
/// The first [`TraceError`] encountered.
pub fn parse_trace(
    text: &str,
    format: TraceFormat,
    limits: &TraceLimits,
) -> Result<WorkflowTrace, TraceError> {
    match format {
        TraceFormat::Dot => parse_dot_trace(text, limits),
        TraceFormat::Json => parse_json_trace(text, limits),
    }
}

/// Interned task table shared by both parsers; enforces the task
/// budget *as tasks appear*.
#[derive(Default)]
struct TaskTable {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
    weights: Vec<f64>,
}

impl TaskTable {
    fn intern(&mut self, name: &str, line: usize, limits: &TraceLimits) -> Result<u32, TraceError> {
        if let Some(&i) = self.by_name.get(name) {
            return Ok(i);
        }
        let count = self.names.len() as u64 + 1;
        if count > limits.effective_max_tasks() {
            return Err(TraceError::TooManyTasks {
                tasks: count,
                limit: limits.effective_max_tasks(),
            });
        }
        let _ = line;
        let i = u32::try_from(self.names.len()).expect("bounded by u32 id space");
        self.by_name.insert(name.to_string(), i);
        self.names.push(name.to_string());
        self.weights.push(1.0);
        Ok(i)
    }
}

// ---------------------------------------------------------------- DOT

/// Parse the DOT subset.
///
/// # Errors
///
/// The first [`TraceError`] encountered.
pub fn parse_dot_trace(text: &str, limits: &TraceLimits) -> Result<WorkflowTrace, TraceError> {
    let mut table = TaskTable::default();
    let mut edges: Vec<TraceEdge> = Vec::new();
    let mut name = None;

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        // Strip line comments ( // and # ), then split on `;` so
        // several statements may share a line.
        let mut code = raw;
        for marker in ["//", "#"] {
            if let Some(i) = code.find(marker) {
                code = &code[..i];
            }
        }
        for stmt in code.split(';') {
            let mut stmt = stmt.trim();
            // Peel the `digraph <name> {` header — it may share a line
            // (and even a statement) with the first node or edge.
            if let Some(rest) = stmt.strip_prefix("digraph") {
                let (header, tail) = match rest.find('{') {
                    Some(i) => (&rest[..i], &rest[i + 1..]),
                    None => (rest, ""),
                };
                let header = header.trim().trim_matches('"');
                if !header.is_empty() {
                    name = Some(header.to_string());
                }
                stmt = tail.trim();
            }
            stmt = stmt.trim_start_matches('{').trim_end_matches('}').trim();
            if stmt.is_empty() {
                continue;
            }
            if stmt.starts_with("graph")
                || stmt.starts_with("node")
                || stmt.starts_with("edge")
                || stmt.starts_with("rankdir")
                || stmt.starts_with("label")
            {
                continue; // default-attribute / cosmetic statements
            }
            if stmt.starts_with("subgraph") {
                return Err(TraceError::Parse {
                    line,
                    msg: "subgraphs are not supported".to_string(),
                });
            }
            parse_dot_statement(stmt, line, limits, &mut table, &mut edges)?;
        }
    }
    if table.names.is_empty() {
        return Err(TraceError::Empty);
    }
    Ok(WorkflowTrace {
        name,
        task_names: table.names,
        weights: table.weights,
        edges,
    })
}

/// One node or edge(-chain) statement: `a [weight=2]` or `a -> b -> c`.
fn parse_dot_statement(
    stmt: &str,
    line: usize,
    limits: &TraceLimits,
    table: &mut TaskTable,
    edges: &mut Vec<TraceEdge>,
) -> Result<(), TraceError> {
    if stmt.contains("->") {
        let mut prev: Option<u32> = None;
        for part in stmt.split("->") {
            // Attributes on edges are ignored.
            let part = match part.find('[') {
                Some(i) => &part[..i],
                None => part,
            };
            let id = parse_dot_name(part.trim(), line)?;
            let node = table.intern(&id, line, limits)?;
            if let Some(p) = prev {
                edges.push(TraceEdge {
                    from: p,
                    to: node,
                    line,
                });
            }
            prev = Some(node);
        }
        return Ok(());
    }
    // Node statement with optional attributes.
    let (name_part, attrs) = match stmt.find('[') {
        Some(i) => {
            let close = stmt.rfind(']').ok_or(TraceError::Parse {
                line,
                msg: "unterminated `[` attribute list".to_string(),
            })?;
            (&stmt[..i], &stmt[i + 1..close])
        }
        None => (stmt, ""),
    };
    let id = parse_dot_name(name_part.trim(), line)?;
    let node = table.intern(&id, line, limits)?;
    for attr in attrs.split(',') {
        let attr = attr.trim();
        if let Some(v) = attr.strip_prefix("weight") {
            let v = v.trim().strip_prefix('=').ok_or(TraceError::Parse {
                line,
                msg: "expected `weight=<number>`".to_string(),
            })?;
            let w: f64 = v
                .trim()
                .trim_matches('"')
                .parse()
                .map_err(|_| TraceError::Parse {
                    line,
                    msg: format!("bad weight `{}`", v.trim()),
                })?;
            if !(w.is_finite() && w > 0.0) {
                return Err(TraceError::BadWeight { line, id });
            }
            table.weights[node as usize] = w;
        }
    }
    Ok(())
}

fn parse_dot_name(part: &str, line: usize) -> Result<String, TraceError> {
    let part = part.trim();
    if part.is_empty() {
        return Err(TraceError::Parse {
            line,
            msg: "empty node name".to_string(),
        });
    }
    if let Some(stripped) = part.strip_prefix('"') {
        let inner = stripped.strip_suffix('"').ok_or(TraceError::Parse {
            line,
            msg: format!("unterminated quoted name `{part}`"),
        })?;
        return Ok(inner.to_string());
    }
    if part
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-')
    {
        Ok(part.to_string())
    } else {
        Err(TraceError::Parse {
            line,
            msg: format!("bad node name `{part}`"),
        })
    }
}

// --------------------------------------------------------------- JSON

/// Parse the JSON workflow schema.
///
/// # Errors
///
/// The first [`TraceError`] encountered.
pub fn parse_json_trace(text: &str, limits: &TraceLimits) -> Result<WorkflowTrace, TraceError> {
    let mut cur = Cursor::new(text);
    let mut table = TaskTable::default();
    // Edges by *name*, resolved after the whole document is read so
    // forward references work; direction is already parent → child.
    let mut by_name_edges: Vec<(String, u32, usize)> = Vec::new(); // (parent, child, line)
    let mut child_edges: Vec<(u32, String, usize)> = Vec::new(); // (parent, child-name, line)
    let mut wf_name = None;

    cur.skip_ws();
    cur.expect(b'{')?;
    loop {
        cur.skip_ws();
        if cur.eat(b'}') {
            break;
        }
        let key = cur.parse_string()?;
        cur.skip_ws();
        cur.expect(b':')?;
        cur.skip_ws();
        match key.as_str() {
            "name" => wf_name = Some(cur.parse_string()?),
            "tasks" => {
                cur.expect(b'[')?;
                cur.skip_ws();
                if !cur.eat(b']') {
                    loop {
                        parse_json_task(
                            &mut cur,
                            limits,
                            &mut table,
                            &mut by_name_edges,
                            &mut child_edges,
                        )?;
                        cur.skip_ws();
                        if cur.eat(b',') {
                            cur.skip_ws();
                            continue;
                        }
                        cur.expect(b']')?;
                        break;
                    }
                }
            }
            _ => cur.skip_value()?,
        }
        cur.skip_ws();
        if cur.eat(b',') {
            continue;
        }
        cur.expect(b'}')?;
        break;
    }

    if table.names.is_empty() {
        return Err(TraceError::Empty);
    }
    let mut edges = Vec::with_capacity(by_name_edges.len() + child_edges.len());
    for (parent, child, line) in by_name_edges {
        let from = *table.by_name.get(&parent).ok_or(TraceError::UnknownTask {
            line,
            id: parent.clone(),
        })?;
        edges.push(TraceEdge {
            from,
            to: child,
            line,
        });
    }
    for (parent, child, line) in child_edges {
        let to = *table.by_name.get(&child).ok_or(TraceError::UnknownTask {
            line,
            id: child.clone(),
        })?;
        edges.push(TraceEdge {
            from: parent,
            to,
            line,
        });
    }
    Ok(WorkflowTrace {
        name: wf_name,
        task_names: table.names,
        weights: table.weights,
        edges,
    })
}

fn parse_json_task(
    cur: &mut Cursor<'_>,
    limits: &TraceLimits,
    table: &mut TaskTable,
    by_name_edges: &mut Vec<(String, u32, usize)>,
    child_edges: &mut Vec<(u32, String, usize)>,
) -> Result<(), TraceError> {
    cur.skip_ws();
    let open_line = cur.line;
    cur.expect(b'{')?;
    let mut id: Option<(String, usize)> = None;
    let mut weight: Option<(f64, usize)> = None;
    let mut parents: Vec<(String, usize)> = Vec::new();
    let mut children: Vec<(String, usize)> = Vec::new();
    loop {
        cur.skip_ws();
        if cur.eat(b'}') {
            break;
        }
        let key = cur.parse_string()?;
        cur.skip_ws();
        cur.expect(b':')?;
        cur.skip_ws();
        let line = cur.line;
        match key.as_str() {
            "id" | "name" => {
                let v = cur.parse_string()?;
                if id.is_none() {
                    id = Some((v, line));
                }
            }
            "weight" | "runtime" => {
                let v = cur.parse_number()?;
                if weight.is_none() {
                    weight = Some((v, line));
                }
            }
            "parents" => parse_json_string_array(cur, &mut parents)?,
            "children" => parse_json_string_array(cur, &mut children)?,
            _ => cur.skip_value()?,
        }
        cur.skip_ws();
        if cur.eat(b',') {
            continue;
        }
        cur.expect(b'}')?;
        break;
    }
    let (id, id_line) = id.ok_or(TraceError::Parse {
        line: open_line,
        msg: "task object needs an `id` (or `name`) string".to_string(),
    })?;
    if table.by_name.contains_key(&id) {
        return Err(TraceError::DuplicateTask { line: id_line, id });
    }
    let node = table.intern(&id, id_line, limits)?;
    if let Some((w, wline)) = weight {
        if !(w.is_finite() && w > 0.0) {
            return Err(TraceError::BadWeight { line: wline, id });
        }
        table.weights[node as usize] = w;
    }
    for (p, line) in parents {
        by_name_edges.push((p, node, line));
    }
    for (c, line) in children {
        child_edges.push((node, c, line));
    }
    Ok(())
}

fn parse_json_string_array(
    cur: &mut Cursor<'_>,
    out: &mut Vec<(String, usize)>,
) -> Result<(), TraceError> {
    cur.expect(b'[')?;
    cur.skip_ws();
    if cur.eat(b']') {
        return Ok(());
    }
    loop {
        cur.skip_ws();
        let line = cur.line;
        out.push((cur.parse_string()?, line));
        cur.skip_ws();
        if cur.eat(b',') {
            continue;
        }
        cur.expect(b']')?;
        return Ok(());
    }
}

/// A minimal JSON cursor — just enough for the workflow schema. The
/// serve crate's full codec lives above this crate in the dependency
/// graph, so the importer carries its own ~100-line reader rather
/// than inverting the layering.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> TraceError {
        TraceError::Parse {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), TraceError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{}`, found `{}`",
                b as char,
                self.peek()
                    .map_or("end of input".to_string(), |c| { (c as char).to_string() })
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, TraceError> {
        self.skip_ws();
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.bump().ok_or_else(|| self.err("bad escape"))?;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let h = self.bump().ok_or_else(|| self.err("bad \\u"))?;
                                code = code * 16
                                    + (h as char)
                                        .to_digit(16)
                                        .ok_or_else(|| self.err("bad \\u escape"))?;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                byte if byte < 0x80 => out.push(byte as char),
                byte => {
                    // Reassemble a UTF-8 multibyte sequence verbatim
                    // (the input is a &str, so it is always valid).
                    let len = if byte >= 0xF0 {
                        4
                    } else if byte >= 0xE0 {
                        3
                    } else {
                        2
                    };
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump();
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8 in string"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, TraceError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.bump();
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        s.parse().map_err(|_| self.err(format!("bad number `{s}`")))
    }

    /// Skip any JSON value (used for unknown keys).
    fn skip_value(&mut self) -> Result<(), TraceError> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'"' => {
                self.parse_string()?;
                Ok(())
            }
            b'{' => {
                self.bump();
                self.skip_ws();
                if self.eat(b'}') {
                    return Ok(());
                }
                loop {
                    self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_value()?;
                    self.skip_ws();
                    if self.eat(b',') {
                        self.skip_ws();
                        continue;
                    }
                    return self.expect(b'}');
                }
            }
            b'[' => {
                self.bump();
                self.skip_ws();
                if self.eat(b']') {
                    return Ok(());
                }
                loop {
                    self.skip_value()?;
                    self.skip_ws();
                    if self.eat(b',') {
                        continue;
                    }
                    return self.expect(b']');
                }
            }
            b't' | b'f' | b'n' => {
                while matches!(self.peek(), Some(b'a'..=b'z')) {
                    self.bump();
                }
                Ok(())
            }
            _ => {
                self.parse_number()?;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOT: &str = r#"
        // a tiny diamond with weights
        digraph diamond {
          rankdir=LR;
          src [weight=2.0];
          mid_a [weight=1.5]; mid_b;
          sink [weight="3"];
          src -> mid_a -> sink;
          src -> mid_b;
          mid_b -> sink;  # trailing comment
        }
    "#;

    const WF_JSON: &str = r#"{
        "name": "toy",
        "schema": "ignored-key",
        "tasks": [
            {"id": "a", "weight": 2.0, "parents": []},
            {"id": "b", "runtime": 1.5, "parents": ["a"], "extra": {"nested": [1, 2]}},
            {"id": "c", "parents": ["a"], "children": ["d"]},
            {"id": "d", "parents": ["b"]}
        ]
    }"#;

    #[test]
    fn dot_round_trips_topology_and_weights() {
        let t = parse_dot_trace(DOT, &TraceLimits::default()).unwrap();
        assert_eq!(t.name.as_deref(), Some("diamond"));
        assert_eq!(t.n_tasks(), 4);
        assert_eq!(t.n_edges(), 4);
        assert_eq!(t.task_name(0), "src");
        assert_eq!(t.weight(0), 2.0);
        assert_eq!(t.weight(1), 1.5);
        assert_eq!(t.weight(2), 1.0, "undeclared weight defaults to 1");
        assert_eq!(t.weight(3), 3.0, "quoted weight accepted");
        let g = t.into_graph(ModelClass::Amdahl, 8, 7).unwrap();
        assert_eq!(g.n_tasks(), 4);
        assert_eq!(g.sources(), &[TaskId(0)]);
        assert_eq!(g.sinks(), vec![TaskId(3)]);
    }

    #[test]
    fn json_round_trips_with_forward_refs_and_children() {
        let t = parse_json_trace(WF_JSON, &TraceLimits::default()).unwrap();
        assert_eq!(t.name.as_deref(), Some("toy"));
        assert_eq!(t.n_tasks(), 4);
        // a->b, a->c, c->d (children), b->d (parents) = 4 edges.
        assert_eq!(t.n_edges(), 4);
        let g = t.into_graph(ModelClass::General, 16, 1).unwrap();
        assert_eq!(g.n_tasks(), 4);
        assert_eq!(g.sources(), &[TaskId(0)]);
        assert_eq!(g.sinks(), vec![TaskId(3)]);
    }

    #[test]
    fn sniffing_picks_the_right_format() {
        assert_eq!(TraceFormat::sniff(WF_JSON), TraceFormat::Json);
        assert_eq!(TraceFormat::sniff(DOT), TraceFormat::Dot);
        assert!(parse_trace(DOT, TraceFormat::sniff(DOT), &TraceLimits::default()).is_ok());
    }

    #[test]
    fn same_seed_same_graph() {
        let t = parse_dot_trace(DOT, &TraceLimits::default()).unwrap();
        let a = t.into_graph(ModelClass::Amdahl, 8, 42).unwrap();
        let b = t.into_graph(ModelClass::Amdahl, 8, 42).unwrap();
        for i in 0..a.n_tasks() {
            let id = TaskId(u32::try_from(i).unwrap());
            assert!(a.model(id).bitwise_eq(b.model(id)), "task {i}");
        }
        let c = t.into_graph(ModelClass::Amdahl, 8, 43).unwrap();
        assert!(
            (0..a.n_tasks()).any(|i| {
                let id = TaskId(u32::try_from(i).unwrap());
                !a.model(id).bitwise_eq(c.model(id))
            }),
            "a different seed samples different models"
        );
    }

    #[test]
    fn task_budget_is_enforced_mid_parse() {
        // 5 tasks against a limit of 3: the parse must stop at the
        // 4th task, mirroring the pre-construction estimate check of
        // synthetic shapes.
        let text = "digraph g { a -> b -> c -> d -> e; }";
        let err = parse_dot_trace(text, &TraceLimits { max_tasks: 3 }).unwrap_err();
        assert_eq!(
            err,
            TraceError::TooManyTasks { tasks: 4, limit: 3 },
            "{err}"
        );
        let msg = err.to_string();
        assert!(msg.contains("more than the limit"), "{msg}");

        let json = r#"{"tasks":[{"id":"a"},{"id":"b"},{"id":"c"},{"id":"d"}]}"#;
        let err = parse_json_trace(json, &TraceLimits { max_tasks: 3 }).unwrap_err();
        assert_eq!(err, TraceError::TooManyTasks { tasks: 4, limit: 3 });
    }

    #[test]
    fn id_space_clamp_matches_by_name_guard() {
        // A limit beyond u32::MAX clamps to the task-id space, the
        // same ceiling `gen::by_name` enforces for synthetic shapes.
        let lim = TraceLimits {
            max_tasks: u64::MAX,
        };
        assert_eq!(lim.effective_max_tasks(), u64::from(u32::MAX));
    }

    #[test]
    fn structured_errors_name_their_line() {
        let cases: &[(&str, TraceFormat, &str)] = &[
            ("digraph { a -> ; }", TraceFormat::Dot, "empty node name"),
            ("digraph { a [weight=x]; }", TraceFormat::Dot, "bad weight"),
            (
                "digraph { a [weight=-2]; }",
                TraceFormat::Dot,
                "non-positive weight",
            ),
            ("digraph { subgraph x { } }", TraceFormat::Dot, "subgraph"),
            ("digraph { }", TraceFormat::Dot, "no tasks"),
            ("digraph { a [weight=1; }", TraceFormat::Dot, "unterminated"),
            ("{\"tasks\": [{}]}", TraceFormat::Json, "needs an `id`"),
            (
                "{\"tasks\": [{\"id\":\"a\"},{\"id\":\"a\"}]}",
                TraceFormat::Json,
                "declared twice",
            ),
            (
                "{\"tasks\": [{\"id\":\"a\",\"parents\":[\"ghost\"]}]}",
                TraceFormat::Json,
                "unknown task `ghost`",
            ),
            (
                "{\"tasks\": [{\"id\":\"a\",\"weight\":-1}]}",
                TraceFormat::Json,
                "non-positive weight",
            ),
            ("{\"tasks\": [", TraceFormat::Json, "expected"),
        ];
        for (text, fmt, needle) in cases {
            let err = parse_trace(text, *fmt, &TraceLimits::default())
                .map(|t| t.n_tasks())
                .unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "`{text}`: `{msg}` missing `{needle}`");
        }
    }

    #[test]
    fn cycles_are_rejected_with_the_edge_line() {
        let text = "digraph g {\n a -> b;\n b -> a;\n}";
        let t = parse_dot_trace(text, &TraceLimits::default()).unwrap();
        let err = t.into_graph(ModelClass::Amdahl, 4, 1).unwrap_err();
        match &err {
            TraceError::Graph { line, .. } => assert_eq!(*line, 3, "{err}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn edge_chains_and_shared_statement_lines_parse() {
        let t = parse_dot_trace(
            "digraph { a -> b -> c; d; a -> d; }",
            &TraceLimits::default(),
        )
        .unwrap();
        assert_eq!(t.n_tasks(), 4);
        assert_eq!(t.n_edges(), 3);
    }
}
