//! Lower bounds on the optimal makespan (Section 3.2, Lemma 2).
//!
//! `T_opt ≥ max(A_min / P, C_min)` where `A_min` is the total minimum
//! area (Definition 1) and `C_min` the minimum critical-path length
//! (Definition 2). Every empirical competitive ratio in this repository
//! is measured against this bound, which can only *overestimate* the
//! true ratio — exactly how the paper's analysis frames it.

use crate::{TaskGraph, TaskId};

/// The Lemma 2 lower-bound data for a graph on a `P`-processor platform.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphBounds {
    /// Platform size the bounds were computed for.
    pub p_total: u32,
    /// `A_min`: sum over tasks of `a_min = a(1)` (Definition 1).
    pub a_min_total: f64,
    /// `C_min`: longest path weighting each task by `t_min` (Definition 2).
    pub c_min: f64,
    /// One path achieving `C_min` (task ids from a source to a sink).
    pub critical_path: Vec<TaskId>,
}

impl GraphBounds {
    /// `max(A_min / P, C_min)` — Lemma 2's lower bound on `T_opt`.
    #[must_use]
    pub fn lower_bound(&self) -> f64 {
        (self.a_min_total / f64::from(self.p_total)).max(self.c_min)
    }

    /// The area bound alone, `A_min / P`.
    #[must_use]
    pub fn area_bound(&self) -> f64 {
        self.a_min_total / f64::from(self.p_total)
    }
}

impl TaskGraph {
    /// Compute the Lemma 2 bounds for this graph on `P` processors.
    ///
    /// O(n + m) after a topological sort: a single DP pass computes the
    /// longest `t_min`-weighted path and the running `a_min` sum.
    ///
    /// # Panics
    ///
    /// Panics if `p_total == 0`.
    #[must_use]
    pub fn bounds(&self, p_total: u32) -> GraphBounds {
        assert!(p_total >= 1);
        let n = self.n_tasks();
        let mut a_min_total = 0.0;
        // dist[t] = length of the longest t_min-weighted path ending at t.
        let mut dist = vec![0.0f64; n];
        // back-pointer for critical-path reconstruction
        let mut back: Vec<Option<TaskId>> = vec![None; n];
        let mut best_end: Option<TaskId> = None;
        let mut best_len = f64::NEG_INFINITY;
        for t in self.topo_order() {
            let tmin = self.model(t).t_min(p_total);
            a_min_total += self.model(t).a_min();
            let mut longest_pred = 0.0;
            let mut bp = None;
            for &p in self.preds(t) {
                if dist[p.index()] > longest_pred {
                    longest_pred = dist[p.index()];
                    bp = Some(p);
                }
            }
            dist[t.index()] = longest_pred + tmin;
            back[t.index()] = bp;
            if dist[t.index()] > best_len {
                best_len = dist[t.index()];
                best_end = Some(t);
            }
        }
        let mut critical_path = Vec::new();
        let mut cur = best_end;
        while let Some(t) = cur {
            critical_path.push(t);
            cur = back[t.index()];
        }
        critical_path.reverse();
        GraphBounds {
            p_total,
            a_min_total,
            c_min: if n == 0 { 0.0 } else { best_len },
            critical_path,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use moldable_model::SpeedupModel;

    #[test]
    fn single_task_bounds() {
        let mut g = GraphBuilder::new();
        // Amdahl w=10, d=2: a_min = 12, t_min(4) = 10/4 + 2 = 4.5
        let t = g.add_task(SpeedupModel::amdahl(10.0, 2.0).unwrap());
        let b = g.freeze().bounds(4);
        assert_eq!(b.a_min_total, 12.0);
        assert_eq!(b.c_min, 4.5);
        assert_eq!(b.critical_path, vec![t]);
        // area bound = 3 < path bound
        assert_eq!(b.lower_bound(), 4.5);
    }

    #[test]
    fn chain_sums_t_min_independents_sum_area() {
        let mut g = GraphBuilder::new();
        let ids: Vec<_> = (0..4)
            .map(|_| g.add_task(SpeedupModel::roofline(8.0, 8).unwrap()))
            .collect();
        // independent: C_min = t_min = 1 (P=8), A_min = 32, area bound = 4.
        let b = g.clone().freeze().bounds(8);
        assert_eq!(b.c_min, 1.0);
        assert_eq!(b.area_bound(), 4.0);
        assert_eq!(b.lower_bound(), 4.0);
        // now chain them: C_min = 4, area bound unchanged.
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        let b = g.freeze().bounds(8);
        assert_eq!(b.c_min, 4.0);
        assert_eq!(b.critical_path, ids);
        assert_eq!(b.lower_bound(), 4.0);
    }

    #[test]
    fn critical_path_picks_heavier_branch() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(SpeedupModel::amdahl(0.0, 1.0).unwrap()); // t_min = 1
        let light = g.add_task(SpeedupModel::amdahl(0.0, 1.0).unwrap());
        let heavy = g.add_task(SpeedupModel::amdahl(0.0, 5.0).unwrap());
        let d = g.add_task(SpeedupModel::amdahl(0.0, 1.0).unwrap());
        g.add_edge(a, light).unwrap();
        g.add_edge(a, heavy).unwrap();
        g.add_edge(light, d).unwrap();
        g.add_edge(heavy, d).unwrap();
        let b = g.freeze().bounds(2);
        assert_eq!(b.c_min, 7.0);
        assert_eq!(b.critical_path, vec![a, heavy, d]);
    }

    #[test]
    fn bounds_scale_with_platform() {
        let mut g = GraphBuilder::new();
        g.add_task(SpeedupModel::amdahl(100.0, 1.0).unwrap());
        let g = g.freeze();
        let b1 = g.bounds(1);
        let b16 = g.bounds(16);
        assert!(b16.c_min < b1.c_min, "more processors shrink C_min");
        assert_eq!(
            b1.a_min_total, b16.a_min_total,
            "A_min is platform-independent"
        );
        assert!(b16.area_bound() < b1.area_bound());
    }

    #[test]
    fn empty_graph_bounds_are_zero() {
        let g = TaskGraph::empty();
        let b = g.bounds(4);
        assert_eq!(b.lower_bound(), 0.0);
        assert!(b.critical_path.is_empty());
    }
}
