//! The mutable graph under construction.
//!
//! [`GraphBuilder`] is the only way to create a [`TaskGraph`]: tasks
//! and edges are added here (checked or trusted), then
//! [`GraphBuilder::freeze`] compacts everything into the immutable CSR
//! form the simulator consumes. The builder keeps classic
//! `Vec<Vec<TaskId>>` adjacency — cheap to grow, and the executable
//! specification the frozen layout is differential-tested against.

use moldable_model::{ModelClass, SpeedupModel};

use crate::task_graph::{GraphError, TaskGraph, TaskId};

/// A directed acyclic graph of moldable tasks, under construction.
///
/// Two edge APIs with one invariant (acyclicity, no duplicates):
///
/// * [`GraphBuilder::add_edge`] — *checked*: rejects unknown endpoints,
///   self-loops, duplicates, and cycles. For hand-built graphs and
///   untrusted input (`.mtg` files, wire requests).
/// * [`GraphBuilder::add_edge_topo`] — *trusted*: the caller promises
///   `from` was created before `to` (so the edge points forward in id
///   order and can never close a cycle) and that it is not a
///   duplicate. Debug builds assert both; release builds skip the
///   cycle DFS and the duplicate-detection hash set entirely, making
///   construction O(1) per edge with zero hash traffic. Every
///   generator in [`crate::gen`] uses this path.
///
/// Successor lists preserve insertion order; the simulator reveals
/// newly available tasks in that order, which matters for adversarial
/// instances (the paper's worst cases assume a specific queue order).
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    models: Vec<SpeedupModel>,
    preds: Vec<Vec<TaskId>>,
    succs: Vec<Vec<TaskId>>,
    edge_set: std::collections::HashSet<(u32, u32)>,
    n_edges: usize,
    /// Scratch for cycle checks: `stamp[v] == generation` marks v
    /// visited in the current DFS, so no per-edge allocation is needed
    /// (large adversarial instances add millions of edges).
    stamp: Vec<u32>,
    generation: u32,
}

impl GraphBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with room for `n` tasks.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            models: Vec::with_capacity(n),
            preds: Vec::with_capacity(n),
            succs: Vec::with_capacity(n),
            edge_set: std::collections::HashSet::new(),
            n_edges: 0,
            stamp: Vec::with_capacity(n),
            generation: 0,
        }
    }

    /// Add a task with the given speedup model; returns its id.
    pub fn add_task(&mut self, model: SpeedupModel) -> TaskId {
        let id = TaskId(u32::try_from(self.models.len()).expect("more than u32::MAX tasks"));
        self.models.push(model);
        self.preds.push(Vec::new());
        self.succs.push(Vec::new());
        self.stamp.push(0);
        id
    }

    /// Add the precedence edge `from → to` (i.e. `to` depends on `from`).
    ///
    /// # Errors
    ///
    /// Rejects unknown endpoints, self-loops, duplicate edges, and
    /// edges that would create a cycle (checked with a reachability
    /// walk from `to`; builders that add edges in topological order
    /// never pay more than O(out-degree)).
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) -> Result<(), GraphError> {
        self.check_id(from)?;
        self.check_id(to)?;
        if from == to {
            return Err(GraphError::SelfLoop(from));
        }
        if self.edge_set.contains(&(from.0, to.0)) {
            return Err(GraphError::DuplicateEdge(from, to));
        }
        // Cycle iff `from` is reachable from `to`.
        if self.reaches(to, from) {
            return Err(GraphError::WouldCycle(from, to));
        }
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
        self.edge_set.insert((from.0, to.0));
        self.n_edges += 1;
        Ok(())
    }

    /// Add the edge `from → to`, trusting the caller that edges arrive
    /// in topological (creation) order: `from.0 < to.0` and the edge is
    /// not a duplicate. Such an edge can never close a cycle, so the
    /// reachability DFS and the duplicate hash set are skipped — this
    /// is the O(1)-per-edge fast path every generator uses.
    ///
    /// Debug builds verify both promises (ordering by assertion, the
    /// duplicate by maintaining the hash set), so mixing this with the
    /// checked [`GraphBuilder::add_edge`] stays sound under
    /// `debug_assertions`. Release builds do no bookkeeping beyond the
    /// adjacency pushes.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range (slice indexing); debug
    /// builds additionally panic on order violations and duplicates.
    pub fn add_edge_topo(&mut self, from: TaskId, to: TaskId) {
        debug_assert!(
            from.0 < to.0,
            "add_edge_topo needs creation order: {from} -> {to}"
        );
        #[cfg(debug_assertions)]
        {
            assert!(
                self.edge_set.insert((from.0, to.0)),
                "add_edge_topo got duplicate edge {from} -> {to}"
            );
        }
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
        self.n_edges += 1;
    }

    fn check_id(&self, t: TaskId) -> Result<(), GraphError> {
        if t.index() < self.models.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownTask(t))
        }
    }

    /// DFS reachability: is `target` reachable from `start`?
    /// Allocation-free: visited marks use a generation-stamped scratch
    /// vector, and builders that only link *to* freshly created sink
    /// nodes exit in O(1).
    fn reaches(&mut self, start: TaskId, target: TaskId) -> bool {
        if start == target {
            return true;
        }
        if self.succs[start.index()].is_empty() {
            return false;
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Stamp wrap-around: reset all marks once every 2^32 calls.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.generation = 1;
        }
        let generation = self.generation;
        let mut stack = vec![start];
        self.stamp[start.index()] = generation;
        while let Some(u) = stack.pop() {
            for &v in &self.succs[u.index()] {
                if v == target {
                    return true;
                }
                if self.stamp[v.index()] != generation {
                    self.stamp[v.index()] = generation;
                    stack.push(v);
                }
            }
        }
        false
    }

    /// Number of tasks.
    #[must_use]
    pub fn n_tasks(&self) -> usize {
        self.models.len()
    }

    /// Number of precedence edges.
    #[must_use]
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// The speedup model of task `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn model(&self, t: TaskId) -> &SpeedupModel {
        &self.models[t.index()]
    }

    /// All task ids, in insertion order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.models.len() as u32).map(TaskId)
    }

    /// Predecessors of `t`, in edge-insertion order.
    #[must_use]
    pub fn preds(&self, t: TaskId) -> &[TaskId] {
        &self.preds[t.index()]
    }

    /// Successors of `t`, in edge-insertion order.
    #[must_use]
    pub fn succs(&self, t: TaskId) -> &[TaskId] {
        &self.succs[t.index()]
    }

    /// Tasks with no predecessor, in id order — the legacy O(n) scan.
    /// The frozen graph precomputes this list once;
    /// `Frontier::initial` equality against this scan is pinned by the
    /// graph crate's property tests.
    #[must_use]
    pub fn sources(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|t| self.preds(*t).is_empty())
            .collect()
    }

    /// The most general [`ModelClass`] containing every task's model
    /// (`None` for an empty builder).
    #[must_use]
    pub fn model_class(&self) -> Option<ModelClass> {
        self.models
            .iter()
            .map(SpeedupModel::class)
            .reduce(ModelClass::join)
    }

    /// A topological order (Kahn's algorithm), same contract as
    /// [`TaskGraph::topo_order`].
    #[must_use]
    pub fn topo_order(&self) -> Vec<TaskId> {
        let n = self.n_tasks();
        let mut indeg: Vec<u32> = (0..n).map(|i| self.preds[i].len() as u32).collect();
        let mut order = Vec::with_capacity(n);
        let mut queue: std::collections::VecDeque<TaskId> =
            self.task_ids().filter(|t| indeg[t.index()] == 0).collect();
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &self.succs[u.index()] {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push_back(v);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "graph is acyclic by construction");
        order
    }

    /// Number of tasks on the longest path (`D` in Theorem 9); 0 for an
    /// empty builder.
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut best = 0usize;
        let mut len = vec![0usize; self.n_tasks()];
        for t in self.topo_order() {
            let l = 1 + self
                .preds(t)
                .iter()
                .map(|p| len[p.index()])
                .max()
                .unwrap_or(0);
            len[t.index()] = l;
            best = best.max(l);
        }
        best
    }

    /// Compact into the immutable CSR [`TaskGraph`].
    ///
    /// O(V + E), no hashing: per-task offsets are prefix sums of the
    /// adjacency lengths and the flat index arrays are filled by
    /// draining each per-task `Vec` in order, so edge-insertion order
    /// per task — the order the simulator reveals successors in — is
    /// preserved exactly. Sources and the joined model class are
    /// computed once here so the frozen graph serves them in O(1).
    ///
    /// # Panics
    ///
    /// Panics if the edge count exceeds `u32::MAX` (the CSR offsets are
    /// `u32`; such a graph could not be simulated anyway).
    #[must_use]
    pub fn freeze(self) -> TaskGraph {
        let n = self.models.len();
        assert!(
            u32::try_from(self.n_edges).is_ok(),
            "more than u32::MAX edges"
        );
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut pred_off = Vec::with_capacity(n + 1);
        let mut succ: Vec<TaskId> = Vec::with_capacity(self.n_edges);
        let mut pred: Vec<TaskId> = Vec::with_capacity(self.n_edges);
        succ_off.push(0u32);
        pred_off.push(0u32);
        let mut sources = Vec::new();
        for (i, (s, p)) in self.succs.iter().zip(&self.preds).enumerate() {
            succ.extend_from_slice(s);
            pred.extend_from_slice(p);
            succ_off.push(succ.len() as u32);
            pred_off.push(pred.len() as u32);
            if p.is_empty() {
                sources.push(TaskId(i as u32));
            }
        }
        let model_class = self
            .models
            .iter()
            .map(SpeedupModel::class)
            .reduce(ModelClass::join);
        TaskGraph::from_csr(
            self.models,
            succ_off,
            succ,
            pred_off,
            pred,
            sources,
            model_class,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> SpeedupModel {
        SpeedupModel::amdahl(1.0, 0.0).unwrap()
    }

    #[test]
    fn rejects_cycles_and_bad_edges() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit());
        let b = g.add_task(unit());
        let c = g.add_task(unit());
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        assert_eq!(g.add_edge(c, a), Err(GraphError::WouldCycle(c, a)));
        assert_eq!(g.add_edge(b, a), Err(GraphError::WouldCycle(b, a)));
        assert_eq!(g.add_edge(a, a), Err(GraphError::SelfLoop(a)));
        assert_eq!(g.add_edge(a, b), Err(GraphError::DuplicateEdge(a, b)));
        assert_eq!(
            g.add_edge(a, TaskId(99)),
            Err(GraphError::UnknownTask(TaskId(99)))
        );
        // Forward edge along an existing path is allowed (transitive edge).
        assert!(g.add_edge(a, c).is_ok());
    }

    #[test]
    fn checked_backward_edges_are_allowed_when_acyclic() {
        // The checked API accepts edges against creation order as long
        // as they close no cycle — the trusted path would reject these.
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit());
        let b = g.add_task(unit());
        g.add_edge(b, a).unwrap();
        let f = g.freeze();
        assert_eq!(f.sources(), &[b]);
        assert_eq!(f.preds(a), &[b]);
        assert_eq!(f.topo_order(), vec![b, a]);
    }

    #[test]
    fn topo_fast_path_matches_checked_path() {
        let build = |topo: bool| {
            let mut g = GraphBuilder::new();
            let ids: Vec<TaskId> = (0..6).map(|_| g.add_task(unit())).collect();
            for (f, t) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 5), (2, 4)] {
                if topo {
                    g.add_edge_topo(ids[f], ids[t]);
                } else {
                    g.add_edge(ids[f], ids[t]).unwrap();
                }
            }
            g
        };
        let (a, b) = (build(true), build(false));
        assert_eq!(a.n_edges(), b.n_edges());
        assert_eq!(a.depth(), b.depth());
        for t in a.task_ids() {
            assert_eq!(a.preds(t), b.preds(t));
            assert_eq!(a.succs(t), b.succs(t));
        }
        let (fa, fb) = (a.freeze(), b.freeze());
        assert_eq!(fa.sources(), fb.sources());
        assert_eq!(fa.n_edges(), fb.n_edges());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "creation order")]
    fn topo_fast_path_asserts_ordering_in_debug() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit());
        let b = g.add_task(unit());
        g.add_edge_topo(b, a);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "duplicate edge")]
    fn topo_fast_path_asserts_no_duplicates_in_debug() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit());
        let b = g.add_task(unit());
        g.add_edge_topo(a, b);
        g.add_edge_topo(a, b);
    }

    #[test]
    fn builder_read_api_matches_frozen_graph() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit());
        let b = g.add_task(unit());
        let c = g.add_task(unit());
        let d = g.add_task(unit());
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.depth(), 3);
        assert_eq!(g.model_class(), Some(ModelClass::Amdahl));
        let f = g.clone().freeze();
        assert_eq!(f.sources(), g.sources());
        assert_eq!(f.depth(), g.depth());
        assert_eq!(f.n_edges(), g.n_edges());
        assert_eq!(f.model_class(), g.model_class());
        for t in g.task_ids() {
            assert_eq!(f.preds(t), g.preds(t));
            assert_eq!(f.succs(t), g.succs(t));
        }
    }
}
