//! Random DAG generators.

use moldable_model::rng::Rng;
use moldable_model::SpeedupModel;

use crate::{GraphBuilder, TaskGraph, TaskId};

use super::TaskCtx;

/// A layered random DAG: `layers` layers of `width` tasks; each task in
/// layer `l ≥ 1` gets an edge from each task of layer `l − 1`
/// independently with probability `p_edge`, plus one guaranteed random
/// predecessor so no task other than layer 0 is a source.
///
/// This is the classic synthetic-workflow shape (e.g. Tobita & Kasahara's
/// STG benchmarks) and keeps the depth exactly `layers`.
pub fn layered_random<R: Rng>(
    layers: usize,
    width: usize,
    p_edge: f64,
    rng: &mut R,
    assign: &mut dyn FnMut(TaskCtx<'_>) -> SpeedupModel,
) -> TaskGraph {
    assert!(layers >= 1 && width >= 1);
    assert!(
        (0.0..=1.0).contains(&p_edge),
        "p_edge must be a probability"
    );
    let mut g = GraphBuilder::with_capacity(layers * width);
    let mut index = 0;
    let mut prev_layer: Vec<TaskId> = Vec::new();
    for layer in 0..layers {
        let mut cur = Vec::with_capacity(width);
        for _ in 0..width {
            let t = g.add_task(assign(TaskCtx {
                index,
                kind: "layered",
                weight: 1.0,
            }));
            index += 1;
            if layer > 0 {
                let mut has_pred = false;
                for &p in &prev_layer {
                    if rng.gen_bool(p_edge) {
                        g.add_edge_topo(p, t);
                        has_pred = true;
                    }
                }
                if !has_pred {
                    let p = prev_layer[rng.gen_range(0..prev_layer.len())];
                    g.add_edge_topo(p, t);
                }
            }
            cur.push(t);
        }
        prev_layer = cur;
    }
    g.freeze()
}

/// [`layered_random`], but sampling each task's predecessor set by
/// geometric skips instead of one Bernoulli draw per candidate edge:
/// with hit probability `p_edge`, the gap to the next hit is geometric,
/// so drawing `skip = ⌊ln U / ln(1 − p_edge)⌋` jumps straight to it.
/// Work becomes O(tasks + edges) instead of O(layers · width²) — on a
/// 1000 × 1000 instance at `p_edge = 0.002` that is ~3 × 10⁶ RNG draws
/// instead of 10⁹.
///
/// The marginal distribution is identical to [`layered_random`]
/// (each candidate edge present independently with `p_edge`, plus the
/// same guaranteed-predecessor fallback), but the two generators
/// consume the RNG stream differently, so a given seed produces
/// *different* graphs. The dense generator therefore keeps its exact
/// behaviour (seeded experiments stay reproducible); use this one
/// where the instance only needs the right shape statistics — e.g.
/// million-task benchmarks, where building dense costs more than
/// simulating.
pub fn layered_random_sparse<R: Rng>(
    layers: usize,
    width: usize,
    p_edge: f64,
    rng: &mut R,
    assign: &mut dyn FnMut(TaskCtx<'_>) -> SpeedupModel,
) -> TaskGraph {
    assert!(layers >= 1 && width >= 1);
    assert!(
        (0.0..=1.0).contains(&p_edge),
        "p_edge must be a probability"
    );
    let mut g = GraphBuilder::with_capacity(layers * width);
    let mut index = 0;
    let mut prev_layer: Vec<TaskId> = Vec::new();
    // ln(1 − p) < 0 for p ∈ (0, 1); p = 0 and p = 1 short-circuit.
    let ln_q = (1.0 - p_edge).ln();
    for layer in 0..layers {
        let mut cur = Vec::with_capacity(width);
        for _ in 0..width {
            let t = g.add_task(assign(TaskCtx {
                index,
                kind: "layered",
                weight: 1.0,
            }));
            index += 1;
            if layer > 0 {
                let mut has_pred = false;
                if p_edge >= 1.0 {
                    for &p in &prev_layer {
                        g.add_edge_topo(p, t);
                    }
                    has_pred = true;
                } else if p_edge > 0.0 {
                    let mut i = 0usize;
                    loop {
                        // u ∈ (0, 1]: never ln(0), and skip ≥ 0.
                        let u = 1.0 - rng.next_f64();
                        let skip = (u.ln() / ln_q).floor();
                        #[allow(clippy::cast_precision_loss)]
                        if skip >= (prev_layer.len() - i) as f64 {
                            break;
                        }
                        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                        {
                            i += skip as usize;
                        }
                        g.add_edge_topo(prev_layer[i], t);
                        has_pred = true;
                        i += 1;
                        if i >= prev_layer.len() {
                            break;
                        }
                    }
                }
                if !has_pred {
                    let p = prev_layer[rng.gen_range(0..prev_layer.len())];
                    g.add_edge_topo(p, t);
                }
            }
            cur.push(t);
        }
        prev_layer = cur;
    }
    g.freeze()
}

/// An Erdős–Rényi-style random DAG on `n` tasks: for every ordered pair
/// `i < j`, the edge `i → j` is present independently with probability
/// `p_edge`. O(n²) — intended for `n` up to a few thousand.
pub fn random_dag<R: Rng>(
    n: usize,
    p_edge: f64,
    rng: &mut R,
    assign: &mut dyn FnMut(TaskCtx<'_>) -> SpeedupModel,
) -> TaskGraph {
    assert!(
        (0.0..=1.0).contains(&p_edge),
        "p_edge must be a probability"
    );
    let mut g = GraphBuilder::with_capacity(n);
    let ids: Vec<TaskId> = (0..n)
        .map(|index| {
            g.add_task(assign(TaskCtx {
                index,
                kind: "random",
                weight: 1.0,
            }))
        })
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p_edge) {
                g.add_edge_topo(ids[i], ids[j]);
            }
        }
    }
    g.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moldable_model::rng::StdRng;

    fn unit_assign() -> impl FnMut(TaskCtx<'_>) -> SpeedupModel {
        |_| SpeedupModel::amdahl(1.0, 0.0).unwrap()
    }

    #[test]
    fn layered_has_exact_depth_and_connectivity() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = layered_random(6, 5, 0.3, &mut rng, &mut unit_assign());
        assert_eq!(g.n_tasks(), 30);
        assert_eq!(g.depth(), 6);
        // every non-layer-0 task has at least one predecessor
        let sources = g.sources();
        assert_eq!(sources.len(), 5, "only layer 0 tasks are sources");
    }

    #[test]
    fn layered_p_edge_one_is_complete_bipartite() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = layered_random(3, 4, 1.0, &mut rng, &mut unit_assign());
        assert_eq!(g.n_edges(), 2 * 16);
    }

    #[test]
    fn random_dag_is_acyclic_and_edge_count_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40;
        let g = random_dag(n, 0.2, &mut rng, &mut unit_assign());
        assert_eq!(g.n_tasks(), n);
        // topo_order succeeding for all tasks certifies acyclicity
        assert_eq!(g.topo_order().len(), n);
        let max_edges = n * (n - 1) / 2;
        let expected = 0.2 * max_edges as f64;
        let got = g.n_edges() as f64;
        assert!(
            (got - expected).abs() < 0.5 * expected + 20.0,
            "edge count {got} far from expectation {expected}"
        );
    }

    #[test]
    fn random_dag_p_zero_is_independent() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = random_dag(10, 0.0, &mut rng, &mut unit_assign());
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.depth(), 1);
    }

    #[test]
    fn random_dag_p_one_is_total_order() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = random_dag(8, 1.0, &mut rng, &mut unit_assign());
        assert_eq!(g.n_edges(), 28);
        assert_eq!(g.depth(), 8);
    }

    #[test]
    fn sparse_layered_has_exact_depth_and_connectivity() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = layered_random_sparse(6, 5, 0.3, &mut rng, &mut unit_assign());
        assert_eq!(g.n_tasks(), 30);
        assert_eq!(g.depth(), 6);
        assert_eq!(g.sources().len(), 5, "only layer 0 tasks are sources");
    }

    #[test]
    fn sparse_layered_p_edge_extremes_match_dense() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = layered_random_sparse(3, 4, 1.0, &mut rng, &mut unit_assign());
        assert_eq!(g.n_edges(), 2 * 16);
        let mut rng = StdRng::seed_from_u64(3);
        let g = layered_random_sparse(4, 3, 0.0, &mut rng, &mut unit_assign());
        // Only the guaranteed fallback predecessor per non-source task.
        assert_eq!(g.n_edges(), 3 * 3);
    }

    #[test]
    fn sparse_layered_edge_count_tracks_p_edge() {
        // E[extra edges] ≈ layers·width²·p (plus fallbacks); a loose
        // band catches a broken skip distribution without flaking.
        let mut rng = StdRng::seed_from_u64(9);
        let g = layered_random_sparse(20, 50, 0.1, &mut rng, &mut unit_assign());
        let expected = 19.0 * 50.0 * 50.0 * 0.1;
        #[allow(clippy::cast_precision_loss)]
        let got = g.n_edges() as f64;
        assert!(
            (got - expected).abs() < 0.25 * expected,
            "edge count {got} far from expectation {expected}"
        );
        for t in g.task_ids().skip(50) {
            assert!(!g.preds(t).is_empty(), "{t} lost its fallback pred");
        }
    }

    #[test]
    fn generators_are_deterministic_given_seed() {
        let mk = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let g = layered_random(4, 4, 0.5, &mut rng, &mut unit_assign());
            (g.n_edges(), g.depth())
        };
        assert_eq!(mk(7), mk(7));
    }
}
