//! Elementary graph shapes: chains, independent sets, fork-join, trees.

use crate::{GraphBuilder, TaskGraph, TaskId};
use moldable_model::SpeedupModel;

use super::TaskCtx;

/// A linear chain of `n` tasks: `t0 → t1 → … → t(n−1)`.
pub fn chain(n: usize, assign: &mut dyn FnMut(TaskCtx<'_>) -> SpeedupModel) -> TaskGraph {
    let mut g = GraphBuilder::with_capacity(n);
    let mut prev: Option<TaskId> = None;
    for index in 0..n {
        let t = g.add_task(assign(TaskCtx {
            index,
            kind: "chain",
            weight: 1.0,
        }));
        if let Some(p) = prev {
            g.add_edge_topo(p, t);
        }
        prev = Some(t);
    }
    g.freeze()
}

/// `n` independent tasks (no edges) — the online-independent-tasks
/// special case from the related-work table.
pub fn independent(n: usize, assign: &mut dyn FnMut(TaskCtx<'_>) -> SpeedupModel) -> TaskGraph {
    let mut g = GraphBuilder::with_capacity(n);
    for index in 0..n {
        g.add_task(assign(TaskCtx {
            index,
            kind: "independent",
            weight: 1.0,
        }));
    }
    g.freeze()
}

/// `stages` fork-join blocks in series; each block is a source task
/// fanning out to `width` parallel tasks that join into a sink.
/// Total tasks: `stages * (width + 2)`.
pub fn fork_join(
    width: usize,
    stages: usize,
    assign: &mut dyn FnMut(TaskCtx<'_>) -> SpeedupModel,
) -> TaskGraph {
    assert!(width >= 1 && stages >= 1);
    let mut g = GraphBuilder::with_capacity(stages * (width + 2));
    let mut index = 0;
    let mut prev_join: Option<TaskId> = None;
    for _ in 0..stages {
        let fork = g.add_task(assign(TaskCtx {
            index,
            kind: "fork",
            weight: 0.5,
        }));
        index += 1;
        if let Some(j) = prev_join {
            g.add_edge_topo(j, fork);
        }
        let mut mids = Vec::with_capacity(width);
        for _ in 0..width {
            let m = g.add_task(assign(TaskCtx {
                index,
                kind: "work",
                weight: 1.0,
            }));
            index += 1;
            g.add_edge_topo(fork, m);
            mids.push(m);
        }
        let join = g.add_task(assign(TaskCtx {
            index,
            kind: "join",
            weight: 0.5,
        }));
        index += 1;
        for m in mids {
            g.add_edge_topo(m, join);
        }
        prev_join = Some(join);
    }
    g.freeze()
}

/// A reduction (in-)tree: `arity^depth` leaves reduced level by level
/// into a single root; every internal node depends on its `arity`
/// children. `depth = 0` is a single task.
pub fn in_tree(
    depth: u32,
    arity: usize,
    assign: &mut dyn FnMut(TaskCtx<'_>) -> SpeedupModel,
) -> TaskGraph {
    assert!(arity >= 2, "a reduction tree needs arity >= 2");
    let mut g = GraphBuilder::new();
    let mut index = 0;
    // current level, from leaves upward
    let mut level: Vec<TaskId> = (0..arity.pow(depth))
        .map(|_| {
            let t = g.add_task(assign(TaskCtx {
                index,
                kind: "leaf",
                weight: 1.0,
            }));
            index += 1;
            t
        })
        .collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len() / arity);
        for group in level.chunks(arity) {
            let parent = g.add_task(assign(TaskCtx {
                index,
                kind: "reduce",
                weight: 1.0,
            }));
            index += 1;
            for &child in group {
                g.add_edge_topo(child, parent);
            }
            next.push(parent);
        }
        level = next;
    }
    g.freeze()
}

/// A broadcast (out-)tree: one root expanding level by level into
/// `arity^depth` leaves — the mirror image of [`in_tree`].
pub fn out_tree(
    depth: u32,
    arity: usize,
    assign: &mut dyn FnMut(TaskCtx<'_>) -> SpeedupModel,
) -> TaskGraph {
    assert!(arity >= 2, "a broadcast tree needs arity >= 2");
    let mut g = GraphBuilder::new();
    let mut index = 0;
    let root = g.add_task(assign(TaskCtx {
        index,
        kind: "root",
        weight: 1.0,
    }));
    index += 1;
    let mut level = vec![root];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(level.len() * arity);
        for &parent in &level {
            for _ in 0..arity {
                let child = g.add_task(assign(TaskCtx {
                    index,
                    kind: "expand",
                    weight: 1.0,
                }));
                index += 1;
                g.add_edge_topo(parent, child);
                next.push(child);
            }
        }
        level = next;
    }
    g.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_assign() -> impl FnMut(TaskCtx<'_>) -> SpeedupModel {
        |_| SpeedupModel::amdahl(1.0, 0.0).unwrap()
    }

    #[test]
    fn chain_shape() {
        let g = chain(5, &mut unit_assign());
        assert_eq!(g.n_tasks(), 5);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.depth(), 5);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn chain_of_zero_and_one() {
        assert_eq!(chain(0, &mut unit_assign()).n_tasks(), 0);
        let g = chain(1, &mut unit_assign());
        assert_eq!(g.n_tasks(), 1);
        assert_eq!(g.n_edges(), 0);
    }

    #[test]
    fn independent_shape() {
        let g = independent(7, &mut unit_assign());
        assert_eq!(g.n_tasks(), 7);
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.depth(), 1);
        assert_eq!(g.sources().len(), 7);
    }

    #[test]
    fn fork_join_shape() {
        let g = fork_join(4, 3, &mut unit_assign());
        assert_eq!(g.n_tasks(), 3 * 6);
        // per stage: 4 fork edges + 4 join edges; 2 inter-stage edges
        assert_eq!(g.n_edges(), 3 * 8 + 2);
        assert_eq!(g.depth(), 9); // fork, work, join per stage
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn in_tree_shape() {
        let g = in_tree(3, 2, &mut unit_assign());
        assert_eq!(g.n_tasks(), 8 + 4 + 2 + 1);
        assert_eq!(g.depth(), 4);
        assert_eq!(g.sources().len(), 8);
        assert_eq!(g.sinks().len(), 1);
    }

    #[test]
    fn out_tree_mirrors_in_tree() {
        let g = out_tree(3, 2, &mut unit_assign());
        assert_eq!(g.n_tasks(), 15);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 8);
        assert_eq!(g.depth(), 4);
    }

    #[test]
    fn in_tree_depth_zero_is_single_task() {
        let g = in_tree(0, 2, &mut unit_assign());
        assert_eq!(g.n_tasks(), 1);
    }

    #[test]
    fn assigner_receives_kinds() {
        let mut kinds = Vec::new();
        let mut assign = |ctx: TaskCtx<'_>| {
            kinds.push(ctx.kind.to_string());
            SpeedupModel::amdahl(1.0, 0.0).unwrap()
        };
        let _ = fork_join(2, 1, &mut assign);
        assert_eq!(kinds, vec!["fork", "work", "work", "join"]);
    }
}
