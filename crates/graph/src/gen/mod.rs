//! Workload generators.
//!
//! The paper's conclusion calls for evaluating the algorithm "using
//! realistic workflows"; this module provides the task-graph shapes
//! used by the repository's empirical benches: elementary shapes
//! (chains, fork-join, trees), random DAGs, and the task graphs of
//! classic HPC kernels (LU, Cholesky, FFT, 2-D wavefront).
//!
//! Every generator is parameterized by a *model assigner* — a closure
//! receiving a [`TaskCtx`] (kind + suggested relative weight) and
//! returning the task's [`SpeedupModel`]. Use
//! [`weighted_sampler`] to build one from a random
//! [`ParamDistribution`], or supply your own for deterministic tests.

mod basic;
mod kernels;
mod random;

pub use basic::{chain, fork_join, in_tree, independent, out_tree};
pub use kernels::{cholesky, fft, lu, wavefront};
pub use random::{layered_random, layered_random_sparse, random_dag};

/// Re-export of the in-tree PRNG module, so workload-generation code
/// can `use moldable_graph::gen::rng::{Rng, StdRng}` without a direct
/// `moldable-model` dependency.
pub use moldable_model::rng;

use moldable_model::rng::Rng;
use moldable_model::sample::ParamDistribution;
use moldable_model::{ModelClass, SpeedupModel};

/// Context handed to a model assigner for each generated task.
#[derive(Debug, Clone, Copy)]
pub struct TaskCtx<'a> {
    /// Sequential index of the task within this generator call.
    pub index: usize,
    /// Task kind, e.g. `"getrf"`, `"gemm"`, `"chain"`, `"butterfly"`.
    pub kind: &'a str,
    /// Suggested relative work (e.g. GEMM ≈ 6× POTRF per block).
    pub weight: f64,
}

/// Shape names accepted by [`by_name`], in help-text order.
pub const SHAPE_NAMES: [&str; 11] = [
    "chain",
    "independent",
    "fork-join",
    "in-tree",
    "out-tree",
    "layered",
    "random",
    "lu",
    "cholesky",
    "fft",
    "wavefront",
];

/// Exact task count a [`by_name`] call would produce, computed from
/// `(shape, size)` alone — *without* building anything. Saturates at
/// `u128::MAX` for the exponential shapes instead of overflowing.
///
/// Callers enforcing a task budget (the `moldable-serve` daemon, batch
/// drivers) should check this *before* calling [`by_name`]: `in-tree`,
/// `out-tree`, and `fft` are exponential in `size` and `lu`/`cholesky`
/// cubic, so a small `size` can describe a graph far too large to
/// construct.
///
/// # Errors
///
/// Returns a message naming the shape if it is not one of
/// [`SHAPE_NAMES`].
pub fn estimated_tasks(shape: &str, size: u32) -> Result<u128, String> {
    let s = u128::from(size);
    // 2^e, saturating: the tree/fft shapes take `size` as an exponent.
    let pow2 = |e: u32| -> u128 {
        if e >= 127 {
            u128::MAX
        } else {
            1u128 << e
        }
    };
    Ok(match shape {
        "chain" | "independent" | "random" => s,
        // `stages * (width + 2)` with `size` as the width and the
        // fixed 3 stages [`by_name`] passes.
        "fork-join" => 3 * (s + 2),
        // 2^depth leaves + (2^depth − 1) internal nodes.
        "in-tree" | "out-tree" => pow2(size.saturating_add(1)).saturating_sub(1),
        "layered" | "wavefront" => s * s,
        // Per step k with m = nb−1−k: getrf + 2m trsm + m² gemm.
        "lu" => {
            let m = s.saturating_sub(1);
            s + s * m + s * m * (2 * s).saturating_sub(1) / 6
        }
        // Per step k with m = nb−1−k: potrf + m trsm + m(m+1)/2 syrk/gemm.
        "cholesky" => {
            let m = s.saturating_sub(1);
            s + s * m / 2 + m * s * (s + 1) / 6
        }
        // `log_n + 1` rows of `2^log_n` butterflies.
        "fft" => (s + 1).saturating_mul(pow2(size)),
        other => return Err(format!("unknown shape `{other}`")),
    })
}

/// Build a workload by shape name — the one request→instance
/// constructor shared by the CLI `generate` command and the
/// `moldable-serve` daemon, so both accept the exact same shapes with
/// the exact same deterministic seeding.
///
/// Models are sampled from the default [`ParamDistribution`] of
/// `class`, scaled by each task's suggested weight; `seed` makes the
/// result reproducible (same arguments → byte-identical graph).
///
/// # Errors
///
/// Returns a message naming the shape if it is not one of
/// [`SHAPE_NAMES`], if `size` is 0 (several shapes require at least
/// one task), or if the task count would exceed the `u32` task-id
/// space — the exponential shapes (`fft`, `in-tree`, `out-tree`) hit
/// shift/allocation overflow panics long before construction could
/// finish, so such sizes are rejected up front.
pub fn by_name(
    shape: &str,
    size: u32,
    class: ModelClass,
    p_total: u32,
    seed: u64,
) -> Result<crate::TaskGraph, String> {
    let est = estimated_tasks(shape, size)?;
    if size == 0 {
        return Err(format!("shape `{shape}` needs size >= 1"));
    }
    if est > u128::from(u32::MAX) {
        return Err(format!(
            "`{shape}` of size {size} would have {est} tasks, exceeding the 2^32-1 task-id space"
        ));
    }
    let mut rng = rng::StdRng::seed_from_u64(seed);
    let dist = ParamDistribution::default();
    let mut assign = weighted_sampler(class, dist, p_total, &mut rng);
    let size_us = size as usize;
    // Structure RNG seeded independently of the model RNG so adding
    // model parameters never perturbs the generated topology.
    let mut srng = rng::StdRng::seed_from_u64(seed ^ 0xFEED);
    Ok(match shape {
        "chain" => chain(size_us, &mut assign),
        "independent" => independent(size_us, &mut assign),
        "fork-join" => fork_join(size_us, 3, &mut assign),
        "in-tree" => in_tree(size, 2, &mut assign),
        "out-tree" => out_tree(size, 2, &mut assign),
        "layered" => layered_random(size_us, size_us, 0.3, &mut srng, &mut assign),
        "random" => random_dag(size_us, 0.15, &mut srng, &mut assign),
        "lu" => lu(size, &mut assign),
        "cholesky" => cholesky(size, &mut assign),
        "fft" => fft(size, &mut assign),
        "wavefront" => wavefront(size, size, &mut assign),
        other => return Err(format!("unknown shape `{other}`")),
    })
}

/// A model assigner backed by a random [`ParamDistribution`]: samples a
/// model of `class` and scales its work terms by the task's suggested
/// weight.
pub fn weighted_sampler<R: Rng>(
    class: ModelClass,
    dist: ParamDistribution,
    p_total: u32,
    rng: &mut R,
) -> impl FnMut(TaskCtx<'_>) -> SpeedupModel + '_ {
    move |ctx| scale_work(dist.sample(class, p_total, rng), ctx.weight)
}

/// Multiply the work terms (`w` and `d`) of a model by `factor`,
/// leaving the per-processor overhead `c` and the parallelism cap
/// untouched. Tabulated/closure models are scaled pointwise.
#[must_use]
pub fn scale_work(model: SpeedupModel, factor: f64) -> SpeedupModel {
    assert!(
        factor.is_finite() && factor > 0.0,
        "scale factor must be positive"
    );
    match model {
        SpeedupModel::Roofline { w, pbar } => SpeedupModel::Roofline {
            w: w * factor,
            pbar,
        },
        SpeedupModel::Communication { w, c } => SpeedupModel::Communication { w: w * factor, c },
        SpeedupModel::Amdahl { w, d } => SpeedupModel::Amdahl {
            w: w * factor,
            d: d * factor,
        },
        SpeedupModel::General { w, pbar, d, c } => SpeedupModel::General {
            w: w * factor,
            pbar,
            d: d * factor,
            c,
        },
        SpeedupModel::Table(ts) => SpeedupModel::Table(ts.iter().map(|t| t * factor).collect()),
        SpeedupModel::Formula { f, nonincreasing } => SpeedupModel::Formula {
            f: std::sync::Arc::new(move |p| f(p) * factor),
            nonincreasing,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moldable_model::rng::StdRng;

    #[test]
    fn scale_work_scales_time_proportionally() {
        let m = SpeedupModel::amdahl(10.0, 2.0).unwrap();
        let s = scale_work(m.clone(), 3.0);
        for p in [1, 2, 7] {
            assert!((s.time(p) - 3.0 * m.time(p)).abs() < 1e-12);
        }
        // Roofline & table variants too.
        let m = SpeedupModel::table(vec![4.0, 2.0]).unwrap();
        let s = scale_work(m, 0.5);
        assert_eq!(s.time(1), 2.0);
        assert_eq!(s.time(2), 1.0);
    }

    #[test]
    fn scale_work_preserves_overhead() {
        let m = SpeedupModel::general(10.0, 8, 1.0, 0.25).unwrap();
        let SpeedupModel::General { c, pbar, .. } = scale_work(m, 2.0) else {
            panic!()
        };
        assert_eq!(c, 0.25);
        assert_eq!(pbar, 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scale_work_rejects_zero() {
        let _ = scale_work(SpeedupModel::amdahl(1.0, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn by_name_builds_every_listed_shape_deterministically() {
        for shape in SHAPE_NAMES {
            let a = by_name(shape, 4, ModelClass::Amdahl, 16, 7).unwrap();
            let b = by_name(shape, 4, ModelClass::Amdahl, 16, 7).unwrap();
            assert!(a.n_tasks() > 0, "{shape}");
            assert_eq!(a.to_workflow(None), b.to_workflow(None), "{shape}");
        }
        let e = by_name("hexagon", 4, ModelClass::Amdahl, 16, 7).unwrap_err();
        assert!(e.contains("hexagon"));
    }

    #[test]
    fn estimated_tasks_is_exact_for_every_shape() {
        for shape in SHAPE_NAMES {
            for size in [1u32, 2, 3, 5, 8] {
                let est = estimated_tasks(shape, size).unwrap();
                let g = by_name(shape, size, ModelClass::Amdahl, 16, 7).unwrap();
                assert_eq!(est, g.n_tasks() as u128, "{shape} size {size}");
            }
        }
        assert!(estimated_tasks("hexagon", 4).is_err());
    }

    #[test]
    fn by_name_rejects_overflowing_and_zero_sizes() {
        // fft of size 64 used to panic with a shift overflow; now a
        // structured error long before any construction starts.
        for (shape, size) in [
            ("fft", 64u32),
            ("fft", 31),
            ("in-tree", 40),
            ("out-tree", 200),
        ] {
            let e = by_name(shape, size, ModelClass::Amdahl, 16, 7).unwrap_err();
            assert!(e.contains("task-id space"), "{shape} {size}: {e}");
        }
        // Saturation instead of overflow for absurd exponents.
        assert_eq!(estimated_tasks("fft", u32::MAX).unwrap(), u128::MAX);
        assert_eq!(estimated_tasks("in-tree", u32::MAX).unwrap(), u128::MAX - 1);
        for shape in SHAPE_NAMES {
            let e = by_name(shape, 0, ModelClass::Amdahl, 16, 7).unwrap_err();
            assert!(e.contains("size >= 1"), "{shape}: {e}");
        }
    }

    #[test]
    fn weighted_sampler_scales_by_ctx_weight() {
        let dist = ParamDistribution {
            w_min: 2.0,
            w_max: 2.0,
            d_frac: (0.0, 0.0),
            c_frac: (0.0, 0.0),
            pbar_range: (4, 4),
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut assign = weighted_sampler(ModelClass::Amdahl, dist, 8, &mut rng);
        let m = assign(TaskCtx {
            index: 0,
            kind: "x",
            weight: 5.0,
        });
        let SpeedupModel::Amdahl { w, .. } = m else {
            panic!()
        };
        assert!((w - 10.0).abs() < 1e-12);
    }
}
