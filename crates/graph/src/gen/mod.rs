//! Workload generators.
//!
//! The paper's conclusion calls for evaluating the algorithm "using
//! realistic workflows"; this module provides the task-graph shapes
//! used by the repository's empirical benches: elementary shapes
//! (chains, fork-join, trees), random DAGs, and the task graphs of
//! classic HPC kernels (LU, Cholesky, FFT, 2-D wavefront).
//!
//! Every generator is parameterized by a *model assigner* — a closure
//! receiving a [`TaskCtx`] (kind + suggested relative weight) and
//! returning the task's [`SpeedupModel`]. Use
//! [`weighted_sampler`] to build one from a random
//! [`ParamDistribution`], or supply your own for deterministic tests.

mod basic;
mod kernels;
mod random;

pub use basic::{chain, fork_join, in_tree, independent, out_tree};
pub use kernels::{cholesky, fft, lu, wavefront};
pub use random::{layered_random, random_dag};

/// Re-export of the in-tree PRNG module, so workload-generation code
/// can `use moldable_graph::gen::rng::{Rng, StdRng}` without a direct
/// `moldable-model` dependency.
pub use moldable_model::rng;

use moldable_model::rng::Rng;
use moldable_model::sample::ParamDistribution;
use moldable_model::{ModelClass, SpeedupModel};

/// Context handed to a model assigner for each generated task.
#[derive(Debug, Clone, Copy)]
pub struct TaskCtx<'a> {
    /// Sequential index of the task within this generator call.
    pub index: usize,
    /// Task kind, e.g. `"getrf"`, `"gemm"`, `"chain"`, `"butterfly"`.
    pub kind: &'a str,
    /// Suggested relative work (e.g. GEMM ≈ 6× POTRF per block).
    pub weight: f64,
}

/// Shape names accepted by [`by_name`], in help-text order.
pub const SHAPE_NAMES: [&str; 11] = [
    "chain",
    "independent",
    "fork-join",
    "in-tree",
    "out-tree",
    "layered",
    "random",
    "lu",
    "cholesky",
    "fft",
    "wavefront",
];

/// Build a workload by shape name — the one request→instance
/// constructor shared by the CLI `generate` command and the
/// `moldable-serve` daemon, so both accept the exact same shapes with
/// the exact same deterministic seeding.
///
/// Models are sampled from the default [`ParamDistribution`] of
/// `class`, scaled by each task's suggested weight; `seed` makes the
/// result reproducible (same arguments → byte-identical graph).
///
/// # Errors
///
/// Returns a message naming the shape if it is not one of
/// [`SHAPE_NAMES`].
pub fn by_name(
    shape: &str,
    size: u32,
    class: ModelClass,
    p_total: u32,
    seed: u64,
) -> Result<crate::TaskGraph, String> {
    let mut rng = rng::StdRng::seed_from_u64(seed);
    let dist = ParamDistribution::default();
    let mut assign = weighted_sampler(class, dist, p_total, &mut rng);
    let size_us = size as usize;
    // Structure RNG seeded independently of the model RNG so adding
    // model parameters never perturbs the generated topology.
    let mut srng = rng::StdRng::seed_from_u64(seed ^ 0xFEED);
    Ok(match shape {
        "chain" => chain(size_us, &mut assign),
        "independent" => independent(size_us, &mut assign),
        "fork-join" => fork_join(size_us, 3, &mut assign),
        "in-tree" => in_tree(size, 2, &mut assign),
        "out-tree" => out_tree(size, 2, &mut assign),
        "layered" => layered_random(size_us, size_us, 0.3, &mut srng, &mut assign),
        "random" => random_dag(size_us, 0.15, &mut srng, &mut assign),
        "lu" => lu(size, &mut assign),
        "cholesky" => cholesky(size, &mut assign),
        "fft" => fft(size, &mut assign),
        "wavefront" => wavefront(size, size, &mut assign),
        other => return Err(format!("unknown shape `{other}`")),
    })
}

/// A model assigner backed by a random [`ParamDistribution`]: samples a
/// model of `class` and scales its work terms by the task's suggested
/// weight.
pub fn weighted_sampler<R: Rng>(
    class: ModelClass,
    dist: ParamDistribution,
    p_total: u32,
    rng: &mut R,
) -> impl FnMut(TaskCtx<'_>) -> SpeedupModel + '_ {
    move |ctx| scale_work(dist.sample(class, p_total, rng), ctx.weight)
}

/// Multiply the work terms (`w` and `d`) of a model by `factor`,
/// leaving the per-processor overhead `c` and the parallelism cap
/// untouched. Tabulated/closure models are scaled pointwise.
#[must_use]
pub fn scale_work(model: SpeedupModel, factor: f64) -> SpeedupModel {
    assert!(
        factor.is_finite() && factor > 0.0,
        "scale factor must be positive"
    );
    match model {
        SpeedupModel::Roofline { w, pbar } => SpeedupModel::Roofline {
            w: w * factor,
            pbar,
        },
        SpeedupModel::Communication { w, c } => SpeedupModel::Communication { w: w * factor, c },
        SpeedupModel::Amdahl { w, d } => SpeedupModel::Amdahl {
            w: w * factor,
            d: d * factor,
        },
        SpeedupModel::General { w, pbar, d, c } => SpeedupModel::General {
            w: w * factor,
            pbar,
            d: d * factor,
            c,
        },
        SpeedupModel::Table(ts) => SpeedupModel::Table(ts.iter().map(|t| t * factor).collect()),
        SpeedupModel::Formula { f, nonincreasing } => SpeedupModel::Formula {
            f: std::sync::Arc::new(move |p| f(p) * factor),
            nonincreasing,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moldable_model::rng::StdRng;
    

    #[test]
    fn scale_work_scales_time_proportionally() {
        let m = SpeedupModel::amdahl(10.0, 2.0).unwrap();
        let s = scale_work(m.clone(), 3.0);
        for p in [1, 2, 7] {
            assert!((s.time(p) - 3.0 * m.time(p)).abs() < 1e-12);
        }
        // Roofline & table variants too.
        let m = SpeedupModel::table(vec![4.0, 2.0]).unwrap();
        let s = scale_work(m, 0.5);
        assert_eq!(s.time(1), 2.0);
        assert_eq!(s.time(2), 1.0);
    }

    #[test]
    fn scale_work_preserves_overhead() {
        let m = SpeedupModel::general(10.0, 8, 1.0, 0.25).unwrap();
        let SpeedupModel::General { c, pbar, .. } = scale_work(m, 2.0) else {
            panic!()
        };
        assert_eq!(c, 0.25);
        assert_eq!(pbar, 8);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scale_work_rejects_zero() {
        let _ = scale_work(SpeedupModel::amdahl(1.0, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn by_name_builds_every_listed_shape_deterministically() {
        for shape in SHAPE_NAMES {
            let a = by_name(shape, 4, ModelClass::Amdahl, 16, 7).unwrap();
            let b = by_name(shape, 4, ModelClass::Amdahl, 16, 7).unwrap();
            assert!(a.n_tasks() > 0, "{shape}");
            assert_eq!(a.to_workflow(None), b.to_workflow(None), "{shape}");
        }
        let e = by_name("hexagon", 4, ModelClass::Amdahl, 16, 7).unwrap_err();
        assert!(e.contains("hexagon"));
    }

    #[test]
    fn weighted_sampler_scales_by_ctx_weight() {
        let dist = ParamDistribution {
            w_min: 2.0,
            w_max: 2.0,
            d_frac: (0.0, 0.0),
            c_frac: (0.0, 0.0),
            pbar_range: (4, 4),
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut assign = weighted_sampler(ModelClass::Amdahl, dist, 8, &mut rng);
        let m = assign(TaskCtx {
            index: 0,
            kind: "x",
            weight: 5.0,
        });
        let SpeedupModel::Amdahl { w, .. } = m else {
            panic!()
        };
        assert!((w - 10.0).abs() < 1e-12);
    }
}
