//! Task graphs of classic dense linear-algebra and HPC kernels.
//!
//! Dependencies are derived with the standard *last-writer* dataflow
//! rule: a task depends on the last writer of every block it reads or
//! writes. Suggested weights follow the per-block flop counts
//! (GEMM ≈ 2b³, TRSM/SYRK ≈ b³, POTRF/GETRF ≈ b³/3), which is what
//! makes these graphs "realistic workflows" in the sense of the
//! paper's conclusion.

use std::collections::HashMap;

use moldable_model::SpeedupModel;

use crate::{GraphBuilder, TaskGraph, TaskId};

use super::TaskCtx;

/// Last-writer table for block (i, j) coordinates.
struct Dataflow {
    last_writer: HashMap<(u32, u32), TaskId>,
}

impl Dataflow {
    fn new() -> Self {
        Self {
            last_writer: HashMap::new(),
        }
    }

    /// Add `task`, which reads `reads` and writes `write`, to `g` with
    /// the induced dependencies.
    fn add(&mut self, g: &mut GraphBuilder, task: TaskId, reads: &[(u32, u32)], write: (u32, u32)) {
        let mut deps: Vec<TaskId> = Vec::with_capacity(reads.len() + 1);
        for block in reads.iter().chain(std::iter::once(&write)) {
            if let Some(&w) = self.last_writer.get(block) {
                if w != task && !deps.contains(&w) {
                    deps.push(w);
                }
            }
        }
        for d in deps {
            // `deps` dedup above rules out duplicates; last-writer
            // edges always point forward in creation order, so the
            // trusted fast path applies.
            g.add_edge_topo(d, task);
        }
        self.last_writer.insert(write, task);
    }
}

/// Tiled Cholesky factorization (`potrf`/`trsm`/`syrk`/`gemm`) on an
/// `nb × nb` grid of blocks — the canonical moldable-task workflow from
/// numerical linear algebra. Tasks: `nb(nb+1)(nb+2)/6 + O(nb²)`.
pub fn cholesky(nb: u32, assign: &mut dyn FnMut(TaskCtx<'_>) -> SpeedupModel) -> TaskGraph {
    assert!(nb >= 1);
    let mut g = GraphBuilder::new();
    let mut flow = Dataflow::new();
    let mut index = 0;
    let mut task = |g: &mut GraphBuilder, kind, weight| {
        let t = g.add_task(assign(TaskCtx {
            index,
            kind,
            weight,
        }));
        index += 1;
        t
    };
    for k in 0..nb {
        let t = task(&mut g, "potrf", 1.0 / 3.0);
        flow.add(&mut g, t, &[], (k, k));
        for i in (k + 1)..nb {
            let t = task(&mut g, "trsm", 1.0);
            flow.add(&mut g, t, &[(k, k)], (i, k));
        }
        for i in (k + 1)..nb {
            for j in (k + 1)..=i {
                if i == j {
                    let t = task(&mut g, "syrk", 1.0);
                    flow.add(&mut g, t, &[(i, k)], (i, i));
                } else {
                    let t = task(&mut g, "gemm", 2.0);
                    flow.add(&mut g, t, &[(i, k), (j, k)], (i, j));
                }
            }
        }
    }
    g.freeze()
}

/// Tiled LU factorization without pivoting (`getrf`/`trsm`/`gemm`) on an
/// `nb × nb` grid of blocks.
pub fn lu(nb: u32, assign: &mut dyn FnMut(TaskCtx<'_>) -> SpeedupModel) -> TaskGraph {
    assert!(nb >= 1);
    let mut g = GraphBuilder::new();
    let mut flow = Dataflow::new();
    let mut index = 0;
    let mut task = |g: &mut GraphBuilder, kind, weight| {
        let t = g.add_task(assign(TaskCtx {
            index,
            kind,
            weight,
        }));
        index += 1;
        t
    };
    for k in 0..nb {
        let t = task(&mut g, "getrf", 1.0 / 3.0);
        flow.add(&mut g, t, &[], (k, k));
        for j in (k + 1)..nb {
            let t = task(&mut g, "trsm", 1.0);
            flow.add(&mut g, t, &[(k, k)], (k, j));
        }
        for i in (k + 1)..nb {
            let t = task(&mut g, "trsm", 1.0);
            flow.add(&mut g, t, &[(k, k)], (i, k));
        }
        for i in (k + 1)..nb {
            for j in (k + 1)..nb {
                let t = task(&mut g, "gemm", 2.0);
                flow.add(&mut g, t, &[(i, k), (k, j)], (i, j));
            }
        }
    }
    g.freeze()
}

/// The FFT butterfly task graph on `2^log_n` points: `log_n + 1` rows
/// of `2^log_n` tasks; task `(s+1, i)` depends on `(s, i)` and
/// `(s, i XOR 2^s)`.
pub fn fft(log_n: u32, assign: &mut dyn FnMut(TaskCtx<'_>) -> SpeedupModel) -> TaskGraph {
    let n = 1usize << log_n;
    let mut g = GraphBuilder::with_capacity(n * (log_n as usize + 1));
    let mut index = 0;
    let mut prev: Vec<TaskId> = (0..n)
        .map(|_| {
            let t = g.add_task(assign(TaskCtx {
                index,
                kind: "fft-input",
                weight: 1.0,
            }));
            index += 1;
            t
        })
        .collect();
    for s in 0..log_n {
        let stride = 1usize << s;
        let mut cur = Vec::with_capacity(n);
        for i in 0..n {
            let t = g.add_task(assign(TaskCtx {
                index,
                kind: "butterfly",
                weight: 1.0,
            }));
            index += 1;
            g.add_edge_topo(prev[i], t);
            g.add_edge_topo(prev[i ^ stride], t);
            cur.push(t);
        }
        prev = cur;
    }
    g.freeze()
}

/// A 2-D wavefront (stencil sweep): task `(i, j)` on an `rows × cols`
/// grid depends on `(i−1, j)` and `(i, j−1)` — e.g. Smith-Waterman or
/// Gauss-Seidel sweeps.
pub fn wavefront(
    rows: u32,
    cols: u32,
    assign: &mut dyn FnMut(TaskCtx<'_>) -> SpeedupModel,
) -> TaskGraph {
    assert!(rows >= 1 && cols >= 1);
    let mut g = GraphBuilder::with_capacity((rows * cols) as usize);
    let mut ids = vec![Vec::with_capacity(cols as usize); rows as usize];
    let mut index = 0;
    for i in 0..rows as usize {
        for j in 0..cols as usize {
            let t = g.add_task(assign(TaskCtx {
                index,
                kind: "cell",
                weight: 1.0,
            }));
            index += 1;
            if i > 0 {
                g.add_edge_topo(ids[i - 1][j], t);
            }
            if j > 0 {
                g.add_edge_topo(ids[i][j - 1], t);
            }
            ids[i].push(t);
        }
    }
    g.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_assign() -> impl FnMut(TaskCtx<'_>) -> SpeedupModel {
        |_| SpeedupModel::amdahl(1.0, 0.0).unwrap()
    }

    #[test]
    fn cholesky_task_count() {
        // nb=1: 1 potrf. nb=2: potrf, trsm, syrk, potrf = 4.
        assert_eq!(cholesky(1, &mut unit_assign()).n_tasks(), 1);
        assert_eq!(cholesky(2, &mut unit_assign()).n_tasks(), 4);
        // nb=3: k=0: potrf + 2 trsm + (syrk, gemm, syrk) = 6;
        //       k=1: potrf + trsm + syrk = 3; k=2: potrf. total 10.
        assert_eq!(cholesky(3, &mut unit_assign()).n_tasks(), 10);
    }

    #[test]
    fn cholesky_depth_grows_linearly() {
        let g = cholesky(4, &mut unit_assign());
        assert_eq!(g.topo_order().len(), g.n_tasks());
        // critical path alternates potrf/trsm/syrk down the panel:
        // depth = 3*nb - 2 for nb >= 2
        assert_eq!(g.depth(), 10);
    }

    #[test]
    fn lu_task_count() {
        // nb=2: getrf + 1+1 trsm + 1 gemm + getrf = 5
        assert_eq!(lu(2, &mut unit_assign()).n_tasks(), 5);
        // nb=3: k=0: 1+2+2+4=9; k=1: 1+1+1+1=4; k=2: 1. total 14
        assert_eq!(lu(3, &mut unit_assign()).n_tasks(), 14);
    }

    #[test]
    fn lu_is_acyclic_and_single_source() {
        let g = lu(5, &mut unit_assign());
        assert_eq!(g.topo_order().len(), g.n_tasks());
        assert_eq!(g.sources().len(), 1, "first getrf is the only source");
    }

    #[test]
    fn fft_shape() {
        let g = fft(3, &mut unit_assign());
        assert_eq!(g.n_tasks(), 8 * 4);
        assert_eq!(g.depth(), 4);
        // every butterfly has exactly 2 predecessors
        for t in g.task_ids().skip(8) {
            assert_eq!(g.preds(t).len(), 2);
        }
        assert_eq!(g.sources().len(), 8);
        assert_eq!(g.sinks().len(), 8);
    }

    #[test]
    fn wavefront_shape() {
        let g = wavefront(3, 4, &mut unit_assign());
        assert_eq!(g.n_tasks(), 12);
        assert_eq!(g.depth(), 3 + 4 - 1);
        assert_eq!(g.sources().len(), 1);
        assert_eq!(g.sinks().len(), 1);
        // interior cells have two preds
        let interior = g.task_ids().filter(|t| g.preds(*t).len() == 2).count();
        assert_eq!(interior, 2 * 3); // (rows-1)*(cols-1)
    }

    #[test]
    fn kernel_kinds_reported() {
        let mut kinds: Vec<String> = Vec::new();
        let mut assign = |ctx: TaskCtx<'_>| {
            kinds.push(ctx.kind.to_string());
            SpeedupModel::amdahl(ctx.weight, 0.0).unwrap()
        };
        let _ = cholesky(2, &mut assign);
        assert_eq!(kinds, vec!["potrf", "trsm", "syrk", "potrf"]);
    }
}
