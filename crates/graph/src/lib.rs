//! Task graphs of moldable tasks, workload generators, and the
//! makespan lower bounds of Section 3.2.
//!
//! A [`TaskGraph`] is an immutable DAG in CSR form whose nodes carry a
//! [`moldable_model::SpeedupModel`]; edges are precedence constraints.
//! Graphs are assembled through a mutable [`GraphBuilder`] and then
//! *frozen*: built offline (the adversary or workload generator knows
//! everything) but *consumed* online — the simulator only reveals a
//! task to the scheduler once all its predecessors completed, via
//! [`Frontier`].
//!
//! # Example
//!
//! ```
//! use moldable_graph::GraphBuilder;
//! use moldable_model::SpeedupModel;
//!
//! // a → b, a → c  (fork)
//! let mut b_ = GraphBuilder::new();
//! let a = b_.add_task(SpeedupModel::amdahl(4.0, 1.0).unwrap());
//! let b = b_.add_task(SpeedupModel::amdahl(8.0, 0.5).unwrap());
//! let c = b_.add_task(SpeedupModel::amdahl(2.0, 0.0).unwrap());
//! b_.add_edge(a, b).unwrap();
//! b_.add_edge(a, c).unwrap();
//! let g = b_.freeze();
//!
//! assert_eq!(g.n_tasks(), 3);
//! assert_eq!(g.sources(), &[a]);
//! let lb = g.bounds(16); // Lemma 2 lower bounds on a 16-proc platform
//! assert!(lb.lower_bound() > 0.0);
//! ```

#![forbid(unsafe_code)]

mod bounds;
mod builder;
mod dot;
mod fileio;
mod frontier;
mod stats;
mod task_graph;

pub mod gen;
pub mod trace;

pub use bounds::GraphBounds;
pub use builder::GraphBuilder;
pub use fileio::{parse_workflow, WorkflowError};
pub use frontier::Frontier;
pub use stats::GraphStats;
pub use task_graph::{GraphError, TaskGraph, TaskId};
pub use trace::{parse_trace, TraceError, TraceFormat, TraceLimits, WorkflowTrace};
