//! Structural statistics of task graphs.
//!
//! Used by the experiment harness to characterize workloads (the
//! paper's competitive ratios are worst-case over all DAGs; the
//! *shape* of a DAG — depth, width, work balance — is what decides how
//! close a workload gets to the worst case in practice).

use crate::{TaskGraph, TaskId};

/// Structural summary of a graph on a `P`-processor platform.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of tasks.
    pub n_tasks: usize,
    /// Number of edges.
    pub n_edges: usize,
    /// Tasks on the longest path (`D` of Theorem 9).
    pub depth: usize,
    /// Maximum number of tasks in one ASAP level — an upper bound on
    /// how much task parallelism list scheduling can ever exploit.
    pub max_level_width: usize,
    /// Mean tasks per level.
    pub avg_level_width: f64,
    /// Total minimal work `A_min` and the serial fraction
    /// `C_min / (A_min / P)`: ≥ 1 means the critical path dominates.
    pub a_min_total: f64,
    /// `C_min` at the given platform size.
    pub c_min: f64,
    /// `C_min / (A_min/P)` — > 1 ⇒ path-bound, < 1 ⇒ area-bound.
    pub path_dominance: f64,
}

impl TaskGraph {
    /// ASAP level (longest path length in *hops* from any source) per
    /// task; level 0 are the sources.
    #[must_use]
    pub fn levels(&self) -> Vec<u32> {
        let mut level = vec![0u32; self.n_tasks()];
        for t in self.topo_order() {
            let l = self
                .preds(t)
                .iter()
                .map(|p| level[p.index()] + 1)
                .max()
                .unwrap_or(0);
            level[t.index()] = l;
        }
        level
    }

    /// Structural summary (see [`GraphStats`]).
    ///
    /// # Panics
    ///
    /// Panics if `p_total == 0`.
    #[must_use]
    pub fn stats(&self, p_total: u32) -> GraphStats {
        let n = self.n_tasks();
        let levels = self.levels();
        let n_levels = levels.iter().map(|&l| l + 1).max().unwrap_or(0) as usize;
        let mut width = vec![0usize; n_levels];
        for &l in &levels {
            width[l as usize] += 1;
        }
        let b = self.bounds(p_total);
        let area_bound = b.area_bound();
        #[allow(clippy::cast_precision_loss)]
        GraphStats {
            n_tasks: n,
            n_edges: self.n_edges(),
            depth: self.depth(),
            max_level_width: width.iter().copied().max().unwrap_or(0),
            avg_level_width: if n_levels == 0 {
                0.0
            } else {
                n as f64 / n_levels as f64
            },
            a_min_total: b.a_min_total,
            c_min: b.c_min,
            path_dominance: if area_bound == 0.0 {
                0.0
            } else {
                b.c_min / area_bound
            },
        }
    }

    /// Transitive reduction: the unique minimal sub-DAG with the same
    /// reachability. Returns the redundant edges `(from, to)` — those
    /// for which another path `from ⇝ to` exists.
    ///
    /// O(n · (n + m)); intended for analysis and export, not hot paths.
    #[must_use]
    pub fn redundant_edges(&self) -> Vec<(TaskId, TaskId)> {
        let n = self.n_tasks();
        let topo = self.topo_order();
        let pos: Vec<usize> = {
            let mut pos = vec![0usize; n];
            for (i, &t) in topo.iter().enumerate() {
                pos[t.index()] = i;
            }
            pos
        };
        let mut redundant = Vec::new();
        // For each task u, BFS over successors-of-successors: any direct
        // edge (u, v) also reachable through another successor is
        // redundant.
        let mut mark = vec![false; n];
        let mut marked: Vec<usize> = Vec::new();
        for &u in &topo {
            // Reachable set from u via paths of length >= 2:
            // DFS from each direct successor, in topological order.
            let mut direct: Vec<TaskId> = self.succs(u).to_vec();
            direct.sort_by_key(|t| pos[t.index()]);
            for &v in &direct {
                if mark[v.index()] {
                    redundant.push((u, v));
                    continue;
                }
                // add everything reachable from v
                let mut stack = vec![v];
                while let Some(x) = stack.pop() {
                    for &y in self.succs(x) {
                        if !mark[y.index()] {
                            mark[y.index()] = true;
                            marked.push(y.index());
                            stack.push(y);
                        }
                    }
                }
            }
            for &i in &marked {
                mark[i] = false;
            }
            marked.clear();
        }
        redundant
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moldable_model::SpeedupModel;

    fn unit() -> SpeedupModel {
        SpeedupModel::amdahl(1.0, 0.0).unwrap()
    }

    #[test]
    fn levels_of_diamond() {
        let mut g = crate::GraphBuilder::new();
        let a = g.add_task(unit());
        let b = g.add_task(unit());
        let c = g.add_task(unit());
        let d = g.add_task(unit());
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        let g = g.freeze();
        assert_eq!(g.levels(), vec![0, 1, 1, 2]);
        let s = g.stats(4);
        assert_eq!(s.depth, 3);
        assert_eq!(s.max_level_width, 2);
        assert!((s.avg_level_width - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_chain_is_path_dominant() {
        // Sequential fraction keeps t_min bounded away from w/P, so the
        // chain's C_min strictly dominates A_min/P (a d=0 perfectly
        // parallel chain has C_min == A_min/P exactly).
        let mut g = crate::GraphBuilder::new();
        let mut prev: Option<TaskId> = None;
        for _ in 0..5 {
            let t = g.add_task(SpeedupModel::amdahl(1.0, 1.0).unwrap());
            if let Some(p) = prev {
                g.add_edge(p, t).unwrap();
            }
            prev = Some(t);
        }
        let s = g.freeze().stats(8);
        assert_eq!(s.max_level_width, 1);
        assert!(s.path_dominance > 1.0, "chains are path-bound");
    }

    #[test]
    fn stats_of_independents_is_area_dominant() {
        let mut g = crate::GraphBuilder::new();
        for _ in 0..32 {
            g.add_task(unit());
        }
        let s = g.freeze().stats(4);
        assert_eq!(s.max_level_width, 32);
        assert!(s.path_dominance < 1.0, "independents are area-bound");
    }

    #[test]
    fn transitive_edge_is_redundant() {
        let mut g = crate::GraphBuilder::new();
        let a = g.add_task(unit());
        let b = g.add_task(unit());
        let c = g.add_task(unit());
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        g.add_edge(a, c).unwrap(); // redundant: a -> b -> c
        assert_eq!(g.freeze().redundant_edges(), vec![(a, c)]);
    }

    #[test]
    fn diamond_has_no_redundant_edges() {
        let mut g = crate::GraphBuilder::new();
        let a = g.add_task(unit());
        let b = g.add_task(unit());
        let c = g.add_task(unit());
        let d = g.add_task(unit());
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        assert!(g.freeze().redundant_edges().is_empty());
    }

    #[test]
    fn longer_shortcut_also_detected() {
        // a -> b -> c -> d plus shortcut a -> d.
        let mut g = crate::GraphBuilder::new();
        let ids: Vec<TaskId> = (0..4).map(|_| g.add_task(unit())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g.add_edge(ids[0], ids[3]).unwrap();
        assert_eq!(g.freeze().redundant_edges(), vec![(ids[0], ids[3])]);
    }

    #[test]
    fn empty_graph_stats() {
        let g = TaskGraph::empty();
        let s = g.stats(4);
        assert_eq!(s.n_tasks, 0);
        assert_eq!(s.max_level_width, 0);
        assert!(g.redundant_edges().is_empty());
    }
}
