//! Online revelation of a task graph.
//!
//! In the paper's online model (Section 3.1) a task becomes *available*
//! — and its execution-time parameters become known — only when all of
//! its predecessors have completed. [`Frontier`] tracks that state: the
//! simulator owns the full graph but only forwards tasks to the
//! scheduler as the frontier releases them.

use crate::{TaskGraph, TaskId};

/// Tracks which tasks are available/completed during online execution.
#[derive(Debug, Clone)]
pub struct Frontier {
    remaining_preds: Vec<u32>,
    completed: Vec<bool>,
    n_completed: usize,
}

impl Frontier {
    /// Initialize from a graph. Tasks with no predecessors are
    /// immediately available via [`Frontier::initial`].
    #[must_use]
    pub fn new(graph: &TaskGraph) -> Self {
        let remaining_preds = graph
            .task_ids()
            .map(|t| u32::try_from(graph.preds(t).len()).expect("pred count fits u32"))
            .collect();
        Self {
            remaining_preds,
            completed: vec![false; graph.n_tasks()],
            n_completed: 0,
        }
    }

    /// The initially available tasks (the graph's sources), in id order
    /// — the paper's "at time 0" release. Served from the frozen
    /// graph's precomputed source list; no scan.
    #[must_use]
    pub fn initial(&self, graph: &TaskGraph) -> Vec<TaskId> {
        graph.sources().to_vec()
    }

    /// Record the completion of `task` and return the tasks that become
    /// available *because of it*, in the graph's successor order.
    ///
    /// Allocates a fresh `Vec` per call; the engine's steady-state path
    /// is [`Frontier::complete_into`].
    ///
    /// # Panics
    ///
    /// Panics if `task` was already completed or still has unfinished
    /// predecessors (a scheduler bug the simulator must not mask).
    pub fn complete(&mut self, graph: &TaskGraph, task: TaskId) -> Vec<TaskId> {
        let mut newly = Vec::new();
        self.complete_into(graph, task, &mut newly);
        newly
    }

    /// [`Frontier::complete`], but appending the newly available tasks
    /// to a caller-owned buffer instead of allocating. The buffer is
    /// *not* cleared — the engine batches several same-instant
    /// completions into one buffer and clears it between decision
    /// points, which keeps the hot loop allocation-free at steady
    /// state.
    ///
    /// # Panics
    ///
    /// Same contract as [`Frontier::complete`].
    pub fn complete_into(&mut self, graph: &TaskGraph, task: TaskId, newly: &mut Vec<TaskId>) {
        assert!(!self.completed[task.index()], "{task} completed twice");
        assert_eq!(
            self.remaining_preds[task.index()],
            0,
            "{task} completed before its predecessors"
        );
        self.completed[task.index()] = true;
        self.n_completed += 1;
        for &s in graph.succs(task) {
            let r = &mut self.remaining_preds[s.index()];
            debug_assert!(*r > 0);
            *r -= 1;
            if *r == 0 {
                newly.push(s);
            }
        }
    }

    /// Has every task completed?
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.n_completed == self.completed.len()
    }

    /// Number of completed tasks.
    #[must_use]
    pub fn n_completed(&self) -> usize {
        self.n_completed
    }

    /// Is the given task available (all predecessors done, itself not done)?
    #[must_use]
    pub fn is_available(&self, task: TaskId) -> bool {
        !self.completed[task.index()] && self.remaining_preds[task.index()] == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use moldable_model::SpeedupModel;

    fn unit() -> SpeedupModel {
        SpeedupModel::amdahl(1.0, 0.0).unwrap()
    }

    #[test]
    fn diamond_revelation_order() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit());
        let b = g.add_task(unit());
        let c = g.add_task(unit());
        let d = g.add_task(unit());
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        let g = g.freeze();

        let mut f = Frontier::new(&g);
        assert_eq!(f.initial(&g), vec![a]);
        assert!(f.is_available(a));
        assert!(!f.is_available(b));

        assert_eq!(f.complete(&g, a), vec![b, c]);
        assert_eq!(f.complete(&g, b), vec![]); // d still waits on c
        assert_eq!(f.complete(&g, c), vec![d]);
        assert!(!f.all_done());
        assert_eq!(f.complete(&g, d), vec![]);
        assert!(f.all_done());
        assert_eq!(f.n_completed(), 4);
    }

    #[test]
    fn successor_order_is_preserved() {
        // The adversarial instances rely on B-tasks being revealed
        // before the next A-task: revelation must follow edge order.
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit());
        let b1 = g.add_task(unit());
        let b2 = g.add_task(unit());
        let a2 = g.add_task(unit());
        g.add_edge(a, b1).unwrap();
        g.add_edge(a, b2).unwrap();
        g.add_edge(a, a2).unwrap();
        let g = g.freeze();
        let mut f = Frontier::new(&g);
        assert_eq!(f.complete(&g, a), vec![b1, b2, a2]);
    }

    #[test]
    fn complete_into_appends_without_clearing() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit());
        let b = g.add_task(unit());
        let c = g.add_task(unit());
        g.add_edge(a, c).unwrap();
        let g = g.freeze();
        let mut f = Frontier::new(&g);
        let mut buf = Vec::new();
        f.complete_into(&g, b, &mut buf);
        f.complete_into(&g, a, &mut buf);
        // Batched same-instant completions accumulate; nothing cleared.
        assert_eq!(buf, vec![c]);
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_panics() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit());
        let g = g.freeze();
        let mut f = Frontier::new(&g);
        let _ = f.complete(&g, a);
        let _ = f.complete(&g, a);
    }

    #[test]
    #[should_panic(expected = "before its predecessors")]
    fn premature_completion_panics() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit());
        let b = g.add_task(unit());
        g.add_edge(a, b).unwrap();
        let g = g.freeze();
        let mut f = Frontier::new(&g);
        let _ = f.complete(&g, b);
    }
}
