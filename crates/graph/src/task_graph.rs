//! The task-graph data structure.

use std::fmt;

use moldable_model::{ModelClass, SpeedupModel};

/// Index of a task in a [`TaskGraph`]. Compact `u32` so large graphs
/// (millions of tasks) stay cache-friendly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The id as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Errors when constructing or mutating a [`TaskGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Referenced a task id that does not exist.
    UnknownTask(TaskId),
    /// Tried to add a self-loop.
    SelfLoop(TaskId),
    /// Adding the edge would create a cycle.
    WouldCycle(TaskId, TaskId),
    /// The same edge already exists.
    DuplicateEdge(TaskId, TaskId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTask(t) => write!(f, "unknown task {t}"),
            Self::SelfLoop(t) => write!(f, "self-loop on {t}"),
            Self::WouldCycle(a, b) => write!(f, "edge {a} -> {b} would create a cycle"),
            Self::DuplicateEdge(a, b) => write!(f, "edge {a} -> {b} already present"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed acyclic graph of moldable tasks.
///
/// Successor lists preserve insertion order; the simulator reveals
/// newly available tasks in that order, which matters for adversarial
/// instances (the paper's worst cases assume a specific queue order).
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    models: Vec<SpeedupModel>,
    preds: Vec<Vec<TaskId>>,
    succs: Vec<Vec<TaskId>>,
    edge_set: std::collections::HashSet<(u32, u32)>,
    n_edges: usize,
    /// Scratch for cycle checks: `stamp[v] == generation` marks v
    /// visited in the current DFS, so no per-edge allocation is needed
    /// (large adversarial instances add millions of edges).
    stamp: Vec<u32>,
    generation: u32,
}

impl TaskGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty graph with room for `n` tasks.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            models: Vec::with_capacity(n),
            preds: Vec::with_capacity(n),
            succs: Vec::with_capacity(n),
            edge_set: std::collections::HashSet::new(),
            n_edges: 0,
            stamp: Vec::with_capacity(n),
            generation: 0,
        }
    }

    /// Add a task with the given speedup model; returns its id.
    pub fn add_task(&mut self, model: SpeedupModel) -> TaskId {
        let id = TaskId(u32::try_from(self.models.len()).expect("more than u32::MAX tasks"));
        self.models.push(model);
        self.preds.push(Vec::new());
        self.succs.push(Vec::new());
        self.stamp.push(0);
        id
    }

    /// Add the precedence edge `from → to` (i.e. `to` depends on `from`).
    ///
    /// # Errors
    ///
    /// Rejects unknown endpoints, self-loops, duplicate edges, and
    /// edges that would create a cycle (checked with a reachability
    /// walk from `to`; builders that add edges in topological order
    /// never pay more than O(out-degree)).
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) -> Result<(), GraphError> {
        self.check_id(from)?;
        self.check_id(to)?;
        if from == to {
            return Err(GraphError::SelfLoop(from));
        }
        if self.edge_set.contains(&(from.0, to.0)) {
            return Err(GraphError::DuplicateEdge(from, to));
        }
        // Cycle iff `from` is reachable from `to`.
        if self.reaches(to, from) {
            return Err(GraphError::WouldCycle(from, to));
        }
        self.succs[from.index()].push(to);
        self.preds[to.index()].push(from);
        self.edge_set.insert((from.0, to.0));
        self.n_edges += 1;
        Ok(())
    }

    fn check_id(&self, t: TaskId) -> Result<(), GraphError> {
        if t.index() < self.models.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownTask(t))
        }
    }

    /// DFS reachability: is `target` reachable from `start`?
    /// Allocation-free: visited marks use a generation-stamped scratch
    /// vector, and builders that only link *to* freshly created sink
    /// nodes exit in O(1).
    fn reaches(&mut self, start: TaskId, target: TaskId) -> bool {
        if start == target {
            return true;
        }
        if self.succs[start.index()].is_empty() {
            return false;
        }
        self.generation = self.generation.wrapping_add(1);
        if self.generation == 0 {
            // Stamp wrap-around: reset all marks once every 2^32 calls.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.generation = 1;
        }
        let generation = self.generation;
        let mut stack = vec![start];
        self.stamp[start.index()] = generation;
        while let Some(u) = stack.pop() {
            for &v in &self.succs[u.index()] {
                if v == target {
                    return true;
                }
                if self.stamp[v.index()] != generation {
                    self.stamp[v.index()] = generation;
                    stack.push(v);
                }
            }
        }
        false
    }

    /// Number of tasks.
    #[must_use]
    pub fn n_tasks(&self) -> usize {
        self.models.len()
    }

    /// Number of precedence edges.
    #[must_use]
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// The speedup model of task `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn model(&self, t: TaskId) -> &SpeedupModel {
        &self.models[t.index()]
    }

    /// All task ids, in insertion order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.models.len() as u32).map(TaskId)
    }

    /// Predecessors of `t`, in edge-insertion order.
    #[must_use]
    pub fn preds(&self, t: TaskId) -> &[TaskId] {
        &self.preds[t.index()]
    }

    /// Successors of `t`, in edge-insertion order.
    #[must_use]
    pub fn succs(&self, t: TaskId) -> &[TaskId] {
        &self.succs[t.index()]
    }

    /// Tasks with no predecessor (available at time 0), in id order.
    #[must_use]
    pub fn sources(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|t| self.preds(*t).is_empty())
            .collect()
    }

    /// Tasks with no successor.
    #[must_use]
    pub fn sinks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|t| self.succs(*t).is_empty())
            .collect()
    }

    /// A topological order (Kahn's algorithm). The graph is acyclic by
    /// construction, so this always succeeds and has length `n_tasks`.
    #[must_use]
    pub fn topo_order(&self) -> Vec<TaskId> {
        let n = self.n_tasks();
        let mut indeg: Vec<u32> = (0..n).map(|i| self.preds[i].len() as u32).collect();
        let mut order = Vec::with_capacity(n);
        let mut queue: std::collections::VecDeque<TaskId> =
            self.task_ids().filter(|t| indeg[t.index()] == 0).collect();
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &self.succs[u.index()] {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push_back(v);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "graph is acyclic by construction");
        order
    }

    /// Number of tasks on the longest path (`D` in Theorem 9); 0 for an
    /// empty graph.
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut best = 0usize;
        let mut len = vec![0usize; self.n_tasks()];
        for t in self.topo_order() {
            let l = 1 + self
                .preds(t)
                .iter()
                .map(|p| len[p.index()])
                .max()
                .unwrap_or(0);
            len[t.index()] = l;
            best = best.max(l);
        }
        best
    }

    /// The most general [`ModelClass`] containing every task's model.
    /// Schedulers use this to pick μ. Returns `None` for an empty graph.
    #[must_use]
    pub fn model_class(&self) -> Option<ModelClass> {
        self.models
            .iter()
            .map(SpeedupModel::class)
            .reduce(ModelClass::join)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> SpeedupModel {
        SpeedupModel::amdahl(1.0, 0.0).unwrap()
    }

    #[test]
    fn build_diamond() {
        let mut g = TaskGraph::new();
        let a = g.add_task(unit());
        let b = g.add_task(unit());
        let c = g.add_task(unit());
        let d = g.add_task(unit());
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        assert_eq!(g.n_tasks(), 4);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.sources(), vec![a]);
        assert_eq!(g.sinks(), vec![d]);
        assert_eq!(g.preds(d), &[b, c]);
        assert_eq!(g.succs(a), &[b, c]);
        assert_eq!(g.depth(), 3);
    }

    #[test]
    fn rejects_cycles_and_bad_edges() {
        let mut g = TaskGraph::new();
        let a = g.add_task(unit());
        let b = g.add_task(unit());
        let c = g.add_task(unit());
        g.add_edge(a, b).unwrap();
        g.add_edge(b, c).unwrap();
        assert_eq!(g.add_edge(c, a), Err(GraphError::WouldCycle(c, a)));
        assert_eq!(g.add_edge(b, a), Err(GraphError::WouldCycle(b, a)));
        assert_eq!(g.add_edge(a, a), Err(GraphError::SelfLoop(a)));
        assert_eq!(g.add_edge(a, b), Err(GraphError::DuplicateEdge(a, b)));
        assert_eq!(
            g.add_edge(a, TaskId(99)),
            Err(GraphError::UnknownTask(TaskId(99)))
        );
        // Forward edge along an existing path is allowed (transitive edge).
        assert!(g.add_edge(a, c).is_ok());
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut g = TaskGraph::new();
        let ids: Vec<TaskId> = (0..6).map(|_| g.add_task(unit())).collect();
        g.add_edge(ids[5], ids[0]).unwrap();
        g.add_edge(ids[0], ids[3]).unwrap();
        g.add_edge(ids[3], ids[1]).unwrap();
        g.add_edge(ids[5], ids[2]).unwrap();
        let order = g.topo_order();
        assert_eq!(order.len(), 6);
        let pos: std::collections::HashMap<TaskId, usize> =
            order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for t in g.task_ids() {
            for &s in g.succs(t) {
                assert!(pos[&t] < pos[&s], "{t} must precede {s}");
            }
        }
    }

    #[test]
    fn depth_of_chain_and_independents() {
        let mut g = TaskGraph::new();
        let ids: Vec<TaskId> = (0..5).map(|_| g.add_task(unit())).collect();
        assert_eq!(g.depth(), 1); // all independent
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        assert_eq!(g.depth(), 5);
        assert_eq!(g.sources(), vec![ids[0]]);
    }

    #[test]
    fn model_class_joins() {
        let mut g = TaskGraph::new();
        assert_eq!(g.model_class(), None);
        g.add_task(SpeedupModel::roofline(1.0, 2).unwrap());
        assert_eq!(g.model_class(), Some(ModelClass::Roofline));
        g.add_task(SpeedupModel::amdahl(1.0, 1.0).unwrap());
        assert_eq!(g.model_class(), Some(ModelClass::General));
        g.add_task(SpeedupModel::table(vec![1.0]).unwrap());
        assert_eq!(g.model_class(), Some(ModelClass::Arbitrary));
    }

    #[test]
    fn empty_graph_is_sane() {
        let g = TaskGraph::new();
        assert_eq!(g.n_tasks(), 0);
        assert_eq!(g.depth(), 0);
        assert!(g.sources().is_empty());
        assert!(g.topo_order().is_empty());
    }
}
