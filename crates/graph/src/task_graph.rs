//! The frozen task-graph data structure.
//!
//! A [`TaskGraph`] is immutable: it is produced by
//! [`crate::GraphBuilder::freeze`] and stores its adjacency in CSR
//! (compressed sparse row) form — one flat `succ` array and one flat
//! `pred` array, each indexed by a per-task offset table. Neighbour
//! lookups are two loads into contiguous memory instead of a
//! pointer-chase through `Vec<Vec<TaskId>>`, and the whole structure
//! is three allocations per direction regardless of task count.

use std::fmt;

use moldable_model::{ModelClass, SpeedupModel};

/// Index of a task in a [`TaskGraph`]. Compact `u32` so large graphs
/// (millions of tasks) stay cache-friendly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The id as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Errors when constructing a graph through [`crate::GraphBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// Referenced a task id that does not exist.
    UnknownTask(TaskId),
    /// Tried to add a self-loop.
    SelfLoop(TaskId),
    /// Adding the edge would create a cycle.
    WouldCycle(TaskId, TaskId),
    /// The same edge already exists.
    DuplicateEdge(TaskId, TaskId),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownTask(t) => write!(f, "unknown task {t}"),
            Self::SelfLoop(t) => write!(f, "self-loop on {t}"),
            Self::WouldCycle(a, b) => write!(f, "edge {a} -> {b} would create a cycle"),
            Self::DuplicateEdge(a, b) => write!(f, "edge {a} -> {b} already present"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable directed acyclic graph of moldable tasks, in CSR form.
///
/// Built with [`crate::GraphBuilder`] and frozen once construction is
/// complete; there is no mutation API. Layout (per direction):
///
/// ```text
/// succ_off: [0 .. n]  per-task offsets, n+1 entries (u32)
/// succ:     [ successors of t0 | successors of t1 | ... ]  flat (u32)
/// ```
///
/// `succs(t)` is the slice `succ[succ_off[t] .. succ_off[t+1]]`; the
/// `pred` arrays mirror this for predecessors. Neighbour slices
/// preserve the builder's edge-insertion order; the simulator reveals
/// newly available tasks in that order, which matters for adversarial
/// instances (the paper's worst cases assume a specific queue order).
/// Sources and the joined model class are precomputed at freeze time
/// and served in O(1).
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    models: Vec<SpeedupModel>,
    succ_off: Vec<u32>,
    succ: Vec<TaskId>,
    pred_off: Vec<u32>,
    pred: Vec<TaskId>,
    /// Tasks with no predecessor, in id order, computed at freeze time.
    sources: Vec<TaskId>,
    /// Join of every task's model class, computed at freeze time.
    model_class: Option<ModelClass>,
}

impl TaskGraph {
    /// Assemble from already-validated CSR arrays; only
    /// [`crate::GraphBuilder::freeze`] calls this.
    pub(crate) fn from_csr(
        models: Vec<SpeedupModel>,
        succ_off: Vec<u32>,
        succ: Vec<TaskId>,
        pred_off: Vec<u32>,
        pred: Vec<TaskId>,
        sources: Vec<TaskId>,
        model_class: Option<ModelClass>,
    ) -> Self {
        debug_assert_eq!(succ_off.len(), models.len() + 1);
        debug_assert_eq!(pred_off.len(), models.len() + 1);
        debug_assert_eq!(succ.len(), pred.len());
        Self {
            models,
            succ_off,
            succ,
            pred_off,
            pred,
            sources,
            model_class,
        }
    }

    /// An empty graph (no tasks, no edges). Equivalent to freezing an
    /// empty [`crate::GraphBuilder`].
    #[must_use]
    pub fn empty() -> Self {
        crate::GraphBuilder::new().freeze()
    }

    /// Number of tasks.
    #[must_use]
    pub fn n_tasks(&self) -> usize {
        self.models.len()
    }

    /// Number of precedence edges.
    #[must_use]
    pub fn n_edges(&self) -> usize {
        self.succ.len()
    }

    /// The speedup model of task `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn model(&self, t: TaskId) -> &SpeedupModel {
        &self.models[t.index()]
    }

    /// All task ids, in insertion order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.models.len() as u32).map(TaskId)
    }

    /// Predecessors of `t`, in edge-insertion order.
    #[must_use]
    pub fn preds(&self, t: TaskId) -> &[TaskId] {
        let lo = self.pred_off[t.index()] as usize;
        let hi = self.pred_off[t.index() + 1] as usize;
        &self.pred[lo..hi]
    }

    /// Successors of `t`, in edge-insertion order.
    #[must_use]
    pub fn succs(&self, t: TaskId) -> &[TaskId] {
        let lo = self.succ_off[t.index()] as usize;
        let hi = self.succ_off[t.index() + 1] as usize;
        &self.succ[lo..hi]
    }

    /// Tasks with no predecessor (available at time 0), in id order.
    /// Precomputed at freeze time — no scan.
    #[must_use]
    pub fn sources(&self) -> &[TaskId] {
        &self.sources
    }

    /// Tasks with no successor.
    #[must_use]
    pub fn sinks(&self) -> Vec<TaskId> {
        self.task_ids()
            .filter(|t| self.succs(*t).is_empty())
            .collect()
    }

    /// A topological order (Kahn's algorithm). The graph is acyclic by
    /// construction, so this always succeeds and has length `n_tasks`.
    /// Ids are *not* guaranteed to be in topological order themselves:
    /// the checked builder accepts edges against creation order.
    #[must_use]
    pub fn topo_order(&self) -> Vec<TaskId> {
        let n = self.n_tasks();
        let mut indeg: Vec<u32> = (0..n)
            .map(|i| self.pred_off[i + 1] - self.pred_off[i])
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut queue: std::collections::VecDeque<TaskId> = self.sources.iter().copied().collect();
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in self.succs(u) {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push_back(v);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "graph is acyclic by construction");
        order
    }

    /// Number of tasks on the longest path (`D` in Theorem 9); 0 for an
    /// empty graph.
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut best = 0usize;
        let mut len = vec![0usize; self.n_tasks()];
        for t in self.topo_order() {
            let l = 1 + self
                .preds(t)
                .iter()
                .map(|p| len[p.index()])
                .max()
                .unwrap_or(0);
            len[t.index()] = l;
            best = best.max(l);
        }
        best
    }

    /// The most general [`ModelClass`] containing every task's model.
    /// Schedulers use this to pick μ. Returns `None` for an empty
    /// graph. Precomputed at freeze time.
    #[must_use]
    pub fn model_class(&self) -> Option<ModelClass> {
        self.model_class
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn unit() -> SpeedupModel {
        SpeedupModel::amdahl(1.0, 0.0).unwrap()
    }

    #[test]
    fn build_diamond() {
        let mut g = GraphBuilder::new();
        let a = g.add_task(unit());
        let b = g.add_task(unit());
        let c = g.add_task(unit());
        let d = g.add_task(unit());
        g.add_edge(a, b).unwrap();
        g.add_edge(a, c).unwrap();
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        let g = g.freeze();
        assert_eq!(g.n_tasks(), 4);
        assert_eq!(g.n_edges(), 4);
        assert_eq!(g.sources(), &[a]);
        assert_eq!(g.sinks(), vec![d]);
        assert_eq!(g.preds(d), &[b, c]);
        assert_eq!(g.succs(a), &[b, c]);
        assert_eq!(g.depth(), 3);
    }

    #[test]
    fn topo_order_respects_edges() {
        // Deliberately against creation order: the checked builder
        // accepts any acyclic edge, so the frozen graph cannot assume
        // ids are topologically sorted.
        let mut g = GraphBuilder::new();
        let ids: Vec<TaskId> = (0..6).map(|_| g.add_task(unit())).collect();
        g.add_edge(ids[5], ids[0]).unwrap();
        g.add_edge(ids[0], ids[3]).unwrap();
        g.add_edge(ids[3], ids[1]).unwrap();
        g.add_edge(ids[5], ids[2]).unwrap();
        let g = g.freeze();
        let order = g.topo_order();
        assert_eq!(order.len(), 6);
        let pos: std::collections::HashMap<TaskId, usize> =
            order.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        for t in g.task_ids() {
            for &s in g.succs(t) {
                assert!(pos[&t] < pos[&s], "{t} must precede {s}");
            }
        }
    }

    #[test]
    fn depth_of_chain_and_independents() {
        let mut b = GraphBuilder::new();
        let ids: Vec<TaskId> = (0..5).map(|_| b.add_task(unit())).collect();
        assert_eq!(b.clone().freeze().depth(), 1); // all independent
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1]).unwrap();
        }
        let g = b.freeze();
        assert_eq!(g.depth(), 5);
        assert_eq!(g.sources(), &[ids[0]]);
    }

    #[test]
    fn model_class_joins() {
        let mut b = GraphBuilder::new();
        assert_eq!(b.clone().freeze().model_class(), None);
        b.add_task(SpeedupModel::roofline(1.0, 2).unwrap());
        assert_eq!(b.clone().freeze().model_class(), Some(ModelClass::Roofline));
        b.add_task(SpeedupModel::amdahl(1.0, 1.0).unwrap());
        assert_eq!(b.clone().freeze().model_class(), Some(ModelClass::General));
        b.add_task(SpeedupModel::table(vec![1.0]).unwrap());
        assert_eq!(b.freeze().model_class(), Some(ModelClass::Arbitrary));
    }

    #[test]
    fn empty_graph_is_sane() {
        let g = TaskGraph::empty();
        assert_eq!(g.n_tasks(), 0);
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.depth(), 0);
        assert!(g.sources().is_empty());
        assert!(g.topo_order().is_empty());
        let d = TaskGraph::default();
        assert_eq!(d.n_tasks(), 0);
    }

    #[test]
    fn csr_slices_match_builder_adjacency_on_a_random_graph() {
        use moldable_model::rng::{Rng, StdRng};
        let mut rng = StdRng::seed_from_u64(0xC5A);
        let mut b = GraphBuilder::new();
        let ids: Vec<TaskId> = (0..60).map(|_| b.add_task(unit())).collect();
        for i in 0..60usize {
            for j in (i + 1)..60 {
                if rng.gen_range(0.0f64..1.0) < 0.1 {
                    b.add_edge(ids[i], ids[j]).unwrap();
                }
            }
        }
        let f = b.clone().freeze();
        assert_eq!(f.n_edges(), b.n_edges());
        assert_eq!(f.sources(), b.sources());
        assert_eq!(f.model_class(), b.model_class());
        assert_eq!(f.depth(), b.depth());
        for t in b.task_ids() {
            assert_eq!(f.preds(t), b.preds(t), "{t} preds");
            assert_eq!(f.succs(t), b.succs(t), "{t} succs");
        }
    }
}
