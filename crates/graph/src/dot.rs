//! Graphviz DOT export, used to regenerate the paper's Figure 1 and
//! Figure 3 graph drawings.

use std::fmt::Write as _;

use crate::TaskGraph;

impl TaskGraph {
    /// Render the graph in Graphviz DOT format.
    ///
    /// `label` receives each task id's index and returns the node
    /// label; pass `|i| format!("t{i}")` for plain ids.
    #[must_use]
    pub fn to_dot(&self, name: &str, mut label: impl FnMut(usize) -> String) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{name}\" {{");
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
        for t in self.task_ids() {
            let _ = writeln!(out, "  n{} [label=\"{}\"];", t.0, label(t.index()));
        }
        for t in self.task_ids() {
            for s in self.succs(t) {
                let _ = writeln!(out, "  n{} -> n{};", t.0, s.0);
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moldable_model::SpeedupModel;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut g = crate::GraphBuilder::new();
        let a = g.add_task(SpeedupModel::amdahl(1.0, 0.0).unwrap());
        let b = g.add_task(SpeedupModel::amdahl(1.0, 0.0).unwrap());
        g.add_edge(a, b).unwrap();
        let dot = g.freeze().to_dot("test", |i| format!("T{i}"));
        assert!(dot.starts_with("digraph \"test\""));
        assert!(dot.contains("n0 [label=\"T0\"]"));
        assert!(dot.contains("n1 [label=\"T1\"]"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_of_empty_graph_is_valid() {
        let g = TaskGraph::empty();
        let dot = g.to_dot("empty", |i| i.to_string());
        assert!(dot.contains("digraph"));
        assert!(!dot.contains("->"));
    }
}
