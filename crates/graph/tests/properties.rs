//! Property tests for the graph substrate.
//!
//! Gated behind the non-default `slow-tests` feature: each test sweeps
//! many random DAGs, which is too slow for the tier-1 suite.

#![cfg(feature = "slow-tests")]

use moldable_graph::{gen, Frontier, TaskGraph};
use moldable_model::rng::{Rng, StdRng};
use moldable_model::SpeedupModel;

fn unit_assign() -> impl FnMut(gen::TaskCtx<'_>) -> SpeedupModel {
    |_| SpeedupModel::amdahl(1.0, 0.0).unwrap()
}

fn random_graph(seed: u64, n: usize, p_edge: f64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    gen::random_dag(n, p_edge, &mut rng, &mut unit_assign())
}

/// Topological order covers all tasks and respects every edge.
#[test]
fn topo_order_is_valid() {
    for case in 0u64..128 {
        let mut rng = StdRng::seed_from_u64(0x7090 ^ case);
        let seed = rng.next_u64();
        let n = rng.gen_range(1usize..40);
        let p = rng.gen_range(0.0f64..0.5);
        let g = random_graph(seed, n, p);
        let order = g.topo_order();
        assert_eq!(order.len(), n);
        let mut pos = vec![0usize; n];
        for (i, t) in order.iter().enumerate() {
            pos[t.index()] = i;
        }
        for t in g.task_ids() {
            for s in g.succs(t) {
                assert!(pos[t.index()] < pos[s.index()]);
            }
        }
    }
}

/// Driving the frontier through any completion order consistent with
/// availability completes every task exactly once.
#[test]
fn frontier_releases_everything_once() {
    for case in 0u64..128 {
        let mut rng = StdRng::seed_from_u64(0xF407 ^ case);
        let seed = rng.next_u64();
        let n = rng.gen_range(1usize..30);
        let p = rng.gen_range(0.0f64..0.4);
        let g = random_graph(seed, n, p);
        let mut f = Frontier::new(&g);
        let mut available: Vec<_> = f.initial(&g);
        let mut completed = 0usize;
        let mut released = available.len();
        // complete in "stack" order (depth-first-ish, different from
        // topo order) to exercise non-FIFO completion patterns
        while let Some(t) = available.pop() {
            let newly = f.complete(&g, t);
            completed += 1;
            released += newly.len();
            available.extend(newly);
        }
        assert_eq!(completed, n);
        assert_eq!(released, n);
        assert!(f.all_done());
    }
}

/// Levels are consistent: every edge goes to a strictly higher level,
/// and depth == max level + 1.
#[test]
fn levels_are_monotone() {
    for case in 0u64..128 {
        let mut rng = StdRng::seed_from_u64(0x1E7E ^ case);
        let seed = rng.next_u64();
        let n = rng.gen_range(1usize..40);
        let p = rng.gen_range(0.0f64..0.5);
        let g = random_graph(seed, n, p);
        let levels = g.levels();
        for t in g.task_ids() {
            for s in g.succs(t) {
                assert!(levels[s.index()] > levels[t.index()]);
            }
        }
        let max = levels.iter().copied().max().unwrap_or(0) as usize;
        assert_eq!(g.depth(), max + 1);
    }
}

/// Removing the redundant edges preserves reachability (checked via
/// depth and levels, which are reachability functions).
#[test]
fn transitive_reduction_preserves_levels() {
    for case in 0u64..128 {
        let mut rng = StdRng::seed_from_u64(0x72ED ^ case);
        let seed = rng.next_u64();
        let n = rng.gen_range(2usize..25);
        let g = random_graph(seed, n, 0.35);
        let redundant: std::collections::HashSet<_> = g.redundant_edges().into_iter().collect();
        // rebuild without redundant edges
        let mut h = GraphBuilder::new();
        for t in g.task_ids() {
            let _ = h.add_task(g.model(t).clone());
        }
        for t in g.task_ids() {
            for &s in g.succs(t) {
                if !redundant.contains(&(t, s)) {
                    h.add_edge(t, s).unwrap();
                }
            }
        }
        let h = h.freeze();
        assert_eq!(g.levels(), h.levels(), "reduction changed reachability");
        // and the reduced graph has no redundant edges left
        assert!(h.redundant_edges().is_empty());
    }
}

/// The workflow text format round-trips arbitrary generated DAGs.
#[test]
fn workflow_format_roundtrips() {
    for case in 0u64..128 {
        let mut crng = StdRng::seed_from_u64(0x400D ^ case);
        let seed = crng.next_u64();
        let n = crng.gen_range(0usize..20);
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = moldable_model::sample::ParamDistribution::default();
        let mut assign =
            gen::weighted_sampler(moldable_model::ModelClass::General, dist, 16, &mut rng);
        let mut srng = StdRng::seed_from_u64(seed ^ 1);
        let g = gen::random_dag(n, 0.25, &mut srng, &mut assign);
        let text = g.to_workflow(Some(16));
        let (g2, p) = moldable_graph::parse_workflow(&text).unwrap();
        assert_eq!(p, Some(16));
        assert_eq!(g2.n_tasks(), g.n_tasks());
        assert_eq!(g2.n_edges(), g.n_edges());
        for t in g.task_ids() {
            assert_eq!(g.succs(t), g2.succs(t));
            for q in [1u32, 2, 7, 16] {
                let a = g.model(t).time(q);
                let b = g2.model(t).time(q);
                assert!(
                    (a - b).abs() <= 1e-12 * a.max(1.0),
                    "t{}({q}): {a} vs {b}",
                    t.0
                );
            }
        }
    }
}

/// Lemma 2 bound parts are individually sane on random graphs.
#[test]
fn bounds_are_sane() {
    for case in 0u64..128 {
        let mut crng = StdRng::seed_from_u64(0xB0B5 ^ case);
        let seed = crng.next_u64();
        let n = crng.gen_range(1usize..30);
        let p_total = crng.gen_range(1u32..32);
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = moldable_model::sample::ParamDistribution::default();
        let mut assign =
            gen::weighted_sampler(moldable_model::ModelClass::Amdahl, dist, p_total, &mut rng);
        let mut srng = StdRng::seed_from_u64(seed ^ 2);
        let g = gen::random_dag(n, 0.2, &mut srng, &mut assign);
        let b = g.bounds(p_total);
        // C_min is at least the largest single t_min and at most the
        // serial sum of t_min.
        let tmins: Vec<f64> = g.task_ids().map(|t| g.model(t).t_min(p_total)).collect();
        let max = tmins.iter().copied().fold(0.0, f64::max);
        let sum: f64 = tmins.iter().sum();
        assert!(b.c_min >= max - 1e-12);
        assert!(b.c_min <= sum + 1e-9);
        // The critical path achieves C_min.
        let path_len: f64 = b
            .critical_path
            .iter()
            .map(|t| g.model(*t).t_min(p_total))
            .sum();
        assert!((path_len - b.c_min).abs() < 1e-9);
    }
}
