//! Property tests for the graph substrate.

use moldable_graph::{gen, Frontier, TaskGraph};
use moldable_model::SpeedupModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn unit_assign() -> impl FnMut(gen::TaskCtx<'_>) -> SpeedupModel {
    |_| SpeedupModel::amdahl(1.0, 0.0).unwrap()
}

fn random_graph(seed: u64, n: usize, p_edge: f64) -> TaskGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    gen::random_dag(n, p_edge, &mut rng, &mut unit_assign())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Topological order covers all tasks and respects every edge.
    #[test]
    fn topo_order_is_valid(seed in any::<u64>(), n in 1usize..40, p in 0.0f64..0.5) {
        let g = random_graph(seed, n, p);
        let order = g.topo_order();
        prop_assert_eq!(order.len(), n);
        let mut pos = vec![0usize; n];
        for (i, t) in order.iter().enumerate() {
            pos[t.index()] = i;
        }
        for t in g.task_ids() {
            for s in g.succs(t) {
                prop_assert!(pos[t.index()] < pos[s.index()]);
            }
        }
    }

    /// Driving the frontier through any completion order consistent
    /// with availability completes every task exactly once.
    #[test]
    fn frontier_releases_everything_once(seed in any::<u64>(), n in 1usize..30, p in 0.0f64..0.4) {
        let g = random_graph(seed, n, p);
        let mut f = Frontier::new(&g);
        let mut available: Vec<_> = f.initial(&g);
        let mut completed = 0usize;
        let mut released = available.len();
        // complete in "stack" order (depth-first-ish, different from
        // topo order) to exercise non-FIFO completion patterns
        while let Some(t) = available.pop() {
            let newly = f.complete(&g, t);
            completed += 1;
            released += newly.len();
            available.extend(newly);
        }
        prop_assert_eq!(completed, n);
        prop_assert_eq!(released, n);
        prop_assert!(f.all_done());
    }

    /// Levels are consistent: every edge goes to a strictly higher
    /// level, and depth == max level + 1.
    #[test]
    fn levels_are_monotone(seed in any::<u64>(), n in 1usize..40, p in 0.0f64..0.5) {
        let g = random_graph(seed, n, p);
        let levels = g.levels();
        for t in g.task_ids() {
            for s in g.succs(t) {
                prop_assert!(levels[s.index()] > levels[t.index()]);
            }
        }
        let max = levels.iter().copied().max().unwrap_or(0) as usize;
        prop_assert_eq!(g.depth(), max + 1);
    }

    /// Removing the redundant edges preserves reachability (checked via
    /// depth and levels, which are reachability functions).
    #[test]
    fn transitive_reduction_preserves_levels(seed in any::<u64>(), n in 2usize..25) {
        let g = random_graph(seed, n, 0.35);
        let redundant: std::collections::HashSet<_> =
            g.redundant_edges().into_iter().collect();
        // rebuild without redundant edges
        let mut h = TaskGraph::new();
        for t in g.task_ids() {
            let _ = h.add_task(g.model(t).clone());
        }
        for t in g.task_ids() {
            for &s in g.succs(t) {
                if !redundant.contains(&(t, s)) {
                    h.add_edge(t, s).unwrap();
                }
            }
        }
        prop_assert_eq!(g.levels(), h.levels(), "reduction changed reachability");
        // and the reduced graph has no redundant edges left
        prop_assert!(h.redundant_edges().is_empty());
    }

    /// The workflow text format round-trips arbitrary generated DAGs.
    #[test]
    fn workflow_format_roundtrips(seed in any::<u64>(), n in 0usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = moldable_model::sample::ParamDistribution::default();
        let mut assign =
            gen::weighted_sampler(moldable_model::ModelClass::General, dist, 16, &mut rng);
        let mut srng = StdRng::seed_from_u64(seed ^ 1);
        let g = gen::random_dag(n, 0.25, &mut srng, &mut assign);
        let text = g.to_workflow(Some(16));
        let (g2, p) = moldable_graph::parse_workflow(&text).unwrap();
        prop_assert_eq!(p, Some(16));
        prop_assert_eq!(g2.n_tasks(), g.n_tasks());
        prop_assert_eq!(g2.n_edges(), g.n_edges());
        for t in g.task_ids() {
            prop_assert_eq!(g.succs(t), g2.succs(t));
            for q in [1u32, 2, 7, 16] {
                let a = g.model(t).time(q);
                let b = g2.model(t).time(q);
                prop_assert!((a - b).abs() <= 1e-12 * a.max(1.0),
                    "t{}({q}): {a} vs {b}", t.0);
            }
        }
    }

    /// Lemma 2 bound parts are individually sane on random graphs.
    #[test]
    fn bounds_are_sane(seed in any::<u64>(), n in 1usize..30, p_total in 1u32..32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = moldable_model::sample::ParamDistribution::default();
        let mut assign =
            gen::weighted_sampler(moldable_model::ModelClass::Amdahl, dist, p_total, &mut rng);
        let mut srng = StdRng::seed_from_u64(seed ^ 2);
        let g = gen::random_dag(n, 0.2, &mut srng, &mut assign);
        let b = g.bounds(p_total);
        // C_min is at least the largest single t_min and at most the
        // serial sum of t_min.
        let tmins: Vec<f64> = g.task_ids().map(|t| g.model(t).t_min(p_total)).collect();
        let max = tmins.iter().copied().fold(0.0, f64::max);
        let sum: f64 = tmins.iter().sum();
        prop_assert!(b.c_min >= max - 1e-12);
        prop_assert!(b.c_min <= sum + 1e-9);
        // The critical path achieves C_min.
        let path_len: f64 =
            b.critical_path.iter().map(|t| g.model(*t).t_min(p_total)).sum();
        prop_assert!((path_len - b.c_min).abs() < 1e-9);
    }
}
