//! The curated workflow-trace corpus under `results/traces/` must
//! import cleanly, with the topology each file documents.

use moldable_graph::trace::{parse_trace, TraceFormat, TraceLimits};
use moldable_model::ModelClass;

fn corpus_path(file: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/traces")
        .join(file)
}

fn import(file: &str) -> (usize, usize, usize) {
    let text = std::fs::read_to_string(corpus_path(file)).unwrap();
    let fmt = TraceFormat::sniff(&text);
    let t = parse_trace(&text, fmt, &TraceLimits::default()).unwrap();
    let g = t
        .into_graph(ModelClass::Amdahl, 16, 0xC0FFEE)
        .unwrap_or_else(|e| panic!("{file}: {e}"));
    (g.n_tasks(), g.sources().len(), g.sinks().len())
}

#[test]
fn corpus_imports_with_documented_shapes() {
    assert_eq!(import("montage-toy.dot"), (13, 4, 1));
    assert_eq!(import("epigenomics-toy.json"), (12, 1, 1));
    assert_eq!(import("ligo-toy.json"), (11, 2, 1));
    assert_eq!(import("cycles-chain.dot"), (9, 1, 1));
}

#[test]
fn corpus_import_is_seed_deterministic() {
    let text = std::fs::read_to_string(corpus_path("montage-toy.dot")).unwrap();
    let t = parse_trace(&text, TraceFormat::Dot, &TraceLimits::default()).unwrap();
    let a = t.into_graph(ModelClass::Roofline, 8, 7).unwrap();
    let b = t.into_graph(ModelClass::Roofline, 8, 7).unwrap();
    for i in 0..a.n_tasks() {
        let id = moldable_graph::TaskId(u32::try_from(i).unwrap());
        assert!(a.model(id).bitwise_eq(b.model(id)));
    }
}
