//! Boundary pins for the generator size guards.
//!
//! `gen::by_name` rejects any `(shape, size)` whose task count would
//! overflow the `u32` task-id space — *before* construction starts, so
//! the exponential shapes cannot panic on shift overflow or OOM trying.
//! These tests pin the exact edge for every guarded shape: the largest
//! accepted size and the first rejected one. If a generator's task
//! count formula changes, the pins here must move with it — that is
//! the point.

use moldable_graph::gen::{self, SHAPE_NAMES};
use moldable_model::ModelClass;

/// The task-id space: ids are `u32`, so `u32::MAX` tasks at most.
const LIMIT: u128 = u32::MAX as u128;

/// `(shape, largest accepted size, first rejected size)`.
///
/// Derivations, from the closed forms in `estimated_tasks`:
/// * `fork-join`: `3(s+2) ≤ 2^32−1` ⇔ `s ≤ 1431655763`;
/// * `in-/out-tree`: `2^(s+1)−1 ≤ 2^32−1` ⇔ `s ≤ 31`;
/// * `layered`/`wavefront`: `s² ≤ 2^32−1` ⇔ `s ≤ 65535`;
/// * `fft`: `(s+1)·2^s` — `28·2^27 ≈ 3.8e9` fits, `29·2^28 ≈ 7.8e9`
///   does not;
/// * `lu` ≈ `s³/3` and `cholesky` ≈ `s³/6` cross `2^32` near 2343 and
///   2952 respectively (exact values from the integer formulas).
const EDGES: &[(&str, u32, u32)] = &[
    ("fork-join", 1_431_655_763, 1_431_655_764),
    ("in-tree", 31, 32),
    ("out-tree", 31, 32),
    ("layered", 65_535, 65_536),
    ("wavefront", 65_535, 65_536),
    ("fft", 27, 28),
    ("lu", 2_343, 2_344),
    ("cholesky", 2_952, 2_953),
];

#[test]
fn every_guarded_shape_pins_its_exact_overflow_edge() {
    for &(shape, accepted, rejected) in EDGES {
        assert_eq!(rejected, accepted + 1, "{shape}: edge sizes not adjacent");
        let below = gen::estimated_tasks(shape, accepted).unwrap();
        assert!(
            below <= LIMIT,
            "{shape} size {accepted}: {below} tasks should fit the id space"
        );
        let above = gen::estimated_tasks(shape, rejected).unwrap();
        assert!(
            above > LIMIT,
            "{shape} size {rejected}: {above} tasks should overflow the id space"
        );
    }
}

#[test]
fn by_name_refuses_the_first_rejected_size_without_constructing() {
    // `by_name` must fail fast — these calls return in microseconds
    // because the guard fires before any allocation. A structured
    // message, not a panic.
    for &(shape, _, rejected) in EDGES {
        let e = gen::by_name(shape, rejected, ModelClass::Amdahl, 16, 7).unwrap_err();
        assert!(
            e.contains("task-id space") && e.contains(shape),
            "{shape} size {rejected}: unexpected error `{e}`"
        );
    }
}

#[test]
fn linear_shapes_are_never_rejected_for_size() {
    // `chain`, `independent`, and `random` have exactly `size` tasks,
    // so every representable size fits the id space by construction.
    for shape in ["chain", "independent", "random"] {
        assert_eq!(
            gen::estimated_tasks(shape, u32::MAX).unwrap(),
            LIMIT,
            "{shape}"
        );
    }
}

#[test]
fn size_zero_is_rejected_for_every_shape() {
    for shape in SHAPE_NAMES {
        let e = gen::by_name(shape, 0, ModelClass::Amdahl, 16, 7).unwrap_err();
        assert!(e.contains("size >= 1"), "{shape}: {e}");
    }
}

#[test]
fn estimates_grow_monotonically_in_size() {
    // The guard's correctness argument assumes the count never shrinks
    // as `size` grows — otherwise a rejected size could hide an
    // accepted larger one.
    for shape in SHAPE_NAMES {
        let mut prev = gen::estimated_tasks(shape, 1).unwrap();
        for size in 2..200u32 {
            let here = gen::estimated_tasks(shape, size).unwrap();
            assert!(here >= prev, "{shape}: count shrank at size {size}");
            prev = here;
        }
    }
}

#[test]
fn accepted_boundary_shapes_still_construct_near_the_edge() {
    // Building the full edge-size graphs is too expensive for a test,
    // but the guard must not reject anything it shouldn't: spot-check
    // real construction a comfortable distance inside each edge.
    for (shape, size) in [
        ("in-tree", 12u32),
        ("fft", 10),
        ("lu", 40),
        ("cholesky", 40),
    ] {
        let g = gen::by_name(shape, size, ModelClass::Amdahl, 16, 7).unwrap();
        assert_eq!(
            u128::from(g.n_tasks() as u64),
            gen::estimated_tasks(shape, size).unwrap(),
            "{shape} size {size}"
        );
    }
}

/// The largest size per shape that CI builds in full (seconds, not
/// minutes): big enough that offset arithmetic, prefix sums, and the
/// `u32` CSR layout are exercised well past toy sizes.
const FREEZE_SANITY_SIZES: &[(&str, u32)] = &[
    ("chain", 5_000),
    ("independent", 5_000),
    ("fork-join", 1_000),
    ("in-tree", 13),
    ("out-tree", 13),
    ("layered", 64),
    ("wavefront", 64),
    ("random", 2_000),
    ("fft", 10),
    ("lu", 40),
    ("cholesky", 40),
];

#[test]
fn frozen_generator_graphs_match_a_checked_rebuild() {
    // The generators all construct through the trusted
    // `add_edge_topo` fast path (no cycle check, no duplicate
    // detection in release builds). This pins the fast path to the
    // checked builder: rebuild every frozen graph edge-by-edge through
    // the *checked* API and demand the same invariant summary —
    // identical edge count (so no edge was dropped or doubled),
    // identical depth (so no edge was redirected), identical joined
    // model class, and identical source list.
    for &(shape, size) in FREEZE_SANITY_SIZES {
        let g = gen::by_name(shape, size, ModelClass::Amdahl, 64, 11).unwrap();
        let mut checked = moldable_graph::GraphBuilder::with_capacity(g.n_tasks());
        for t in g.task_ids() {
            checked.add_task(g.model(t).clone());
        }
        for t in g.task_ids() {
            for &s in g.succs(t) {
                checked.add_edge(t, s).unwrap_or_else(|e| {
                    panic!("{shape}/{size}: frozen edge {t}->{s} rejected: {e}")
                });
            }
        }
        assert_eq!(checked.n_edges(), g.n_edges(), "{shape}/{size}: edge count");
        assert_eq!(checked.depth(), g.depth(), "{shape}/{size}: depth");
        assert_eq!(
            checked.model_class(),
            g.model_class(),
            "{shape}/{size}: model class"
        );
        assert_eq!(
            checked.sources(),
            g.sources(),
            "{shape}/{size}: source list"
        );
    }
}

#[test]
fn precomputed_sources_match_the_legacy_scan_on_every_shape() {
    // `Frontier::initial` is now served from the source list computed
    // once at freeze; the legacy behaviour was an O(n) empty-preds
    // scan per run. Equivalence on every generator shape (plus the
    // degenerate empty graph) keeps the precomputation honest.
    for &(shape, size) in FREEZE_SANITY_SIZES {
        let g = gen::by_name(shape, size, ModelClass::Roofline, 32, 5).unwrap();
        let scanned: Vec<_> = g.task_ids().filter(|&t| g.preds(t).is_empty()).collect();
        assert_eq!(g.sources(), scanned, "{shape}/{size}");
        let f = moldable_graph::Frontier::new(&g);
        assert_eq!(f.initial(&g), scanned, "{shape}/{size}: Frontier::initial");
    }
    let empty = moldable_graph::TaskGraph::empty();
    assert!(empty.sources().is_empty());
}
