//! Regression pins for the simulation hot path.
//!
//! `end_to_end.rs` checks the *analysis* numbers against the paper;
//! this suite pins the *measured* numbers — the ones produced by the
//! scheduler + engine pipeline that the indexed ready queue, the
//! allocation cache, and the engine buffer reuse all sit on. Any
//! behavioural drift in that pipeline moves these constants.
//!
//! The pinned values are the `measured` column of
//! `results/lower_bounds.csv` and the Figure 4 marks; tolerances are
//! 1e-2 (the printed precision of Table 1) or tighter.

use moldable::adversary::{amdahl, arbitrary, communication, general, roofline};
use moldable::core::baselines::EqualShareScheduler;
use moldable::core::{AlgoName, OnlineScheduler};
use moldable::model::ModelClass;
use moldable::sim::{simulate, simulate_instance, SimOptions};

/// Run one lower-bound instance and compare the measured ratio to its
/// pinned value.
fn pin(inst: &moldable::adversary::LowerBoundInstance, expect: f64, ctx: &str) {
    let (_, ratio) = inst.run_online();
    assert!(
        (ratio - expect).abs() < 1e-2,
        "{ctx}: measured ratio {ratio} drifted from pinned {expect}"
    );
}

#[test]
fn measured_table1_column_is_pinned() {
    // The `measured LB` column of results/table1.csv, to the printed
    // 1e-2: roofline at P = 1e5, communication at P = 1001, Amdahl and
    // general at K = 80.
    pin(&roofline::instance(100_000), 2.6180, "roofline P=1e5");
    pin(
        &communication::instance(1001),
        3.5083,
        "communication P=1001",
    );
    pin(&amdahl::instance(80), 4.5567, "amdahl K=80");
    pin(&general::instance(80), 5.0765, "general K=80");
}

#[test]
fn lower_bound_sweep_tail_is_pinned() {
    // The largest sweep sizes of results/lower_bounds.csv — exactly
    // the rows the perf work must keep byte-identical.
    pin(
        &communication::instance(1601),
        3.50958,
        "communication P=1601",
    );
    pin(&amdahl::instance(120), 4.60754, "amdahl K=120");
    pin(&general::instance(120), 5.12686, "general K=120");
}

/// Run `algo` on a lower-bound witness and compare makespan and ratio
/// to their pinned values at 1e-6 relative tolerance — far tighter
/// than the 1e-2 table pins, so even sub-print-precision drift in
/// either allocation rule trips the pin.
fn pin_algo(
    inst: &moldable::adversary::LowerBoundInstance,
    class: ModelClass,
    algo: AlgoName,
    expect_mk: f64,
    expect_ratio: f64,
    ctx: &str,
) {
    let (mk, ratio) = inst.run_algo(algo, class);
    assert!(
        ((mk - expect_mk) / expect_mk).abs() < 1e-6,
        "{ctx} [{algo}]: measured makespan {mk:.9} drifted from pinned {expect_mk:.9}"
    );
    assert!(
        ((ratio - expect_ratio) / expect_ratio).abs() < 1e-6,
        "{ctx} [{algo}]: measured ratio {ratio:.9} drifted from pinned {expect_ratio:.9}"
    );
}

#[test]
fn per_algorithm_witness_makespans_are_pinned() {
    // Exact measured makespans and ratios of both registered
    // algorithms on the Theorem 5–8 witnesses. On every witness the
    // Improved'23 dual allocation is strictly better than ICPP'22
    // except roofline, where the two allocation rules make identical
    // decisions and the schedules coincide bit for bit.
    let r = roofline::instance(100_000);
    let (mk_i, ratio_i) = r.run_algo(AlgoName::Icpp22, ModelClass::Roofline);
    let (mk_p, ratio_p) = r.run_algo(AlgoName::Improved23, ModelClass::Roofline);
    assert_eq!(mk_i, mk_p, "roofline decisions are algo-independent");
    assert!(
        ((ratio_i - 2.618_006_650) / 2.618_006_650).abs() < 1e-6,
        "{ratio_i:.9}"
    );
    assert_eq!(ratio_i, ratio_p);

    let c = communication::instance(1001);
    pin_algo(
        &c,
        ModelClass::Communication,
        AlgoName::Icpp22,
        8_300.034_255_173,
        3.506_674_705,
        "communication P=1001",
    );
    pin_algo(
        &c,
        ModelClass::Communication,
        AlgoName::Improved23,
        7_300.457_020_307,
        3.084_364_134,
        "communication P=1001",
    );

    let a = amdahl::instance(80);
    pin_algo(
        &a,
        ModelClass::Amdahl,
        AlgoName::Icpp22,
        373.596_708_479,
        4.556_752_047,
        "amdahl K=80",
    );
    pin_algo(
        &a,
        ModelClass::Amdahl,
        AlgoName::Improved23,
        317.389_547_453,
        3.871_194_358,
        "amdahl K=80",
    );

    let g = general::instance(80);
    pin_algo(
        &g,
        ModelClass::General,
        AlgoName::Icpp22,
        413.609_745_084,
        5.076_523_413,
        "general K=80",
    );
    pin_algo(
        &g,
        ModelClass::General,
        AlgoName::Improved23,
        281.544_289_515,
        3.455_591_157,
        "general K=80",
    );
}

#[test]
fn per_algorithm_sweep_tail_ratios_are_pinned() {
    // The Improved'23 column of the sweep tail, pinned at 1e-6
    // relative alongside the existing icpp22 1e-2 pins above.
    let pins = [
        (
            communication::instance(1601),
            ModelClass::Communication,
            3.509_584_519,
            3.086_805_964,
            "communication P=1601",
        ),
        (
            amdahl::instance(120),
            ModelClass::Amdahl,
            4.607_535_212,
            3.929_730_063,
            "amdahl K=120",
        ),
        (
            general::instance(120),
            ModelClass::General,
            5.126_862_428,
            3.503_555_151,
            "general K=120",
        ),
    ];
    for (inst, class, icpp, improved, ctx) in pins {
        let (_, r_i) = inst.run_algo(AlgoName::Icpp22, class);
        let (_, r_p) = inst.run_algo(AlgoName::Improved23, class);
        assert!(
            ((r_i - icpp) / icpp).abs() < 1e-6,
            "{ctx} [icpp22]: {r_i:.9}"
        );
        assert!(
            ((r_p - improved) / improved).abs() < 1e-6,
            "{ctx} [improved23]: {r_p:.9}"
        );
    }
}

#[test]
fn per_algorithm_fig3_ratios_are_pinned() {
    // The Figure 3 chain forest against its unit-makespan offline
    // schedule, per algorithm.
    let pins = [
        (2u32, 2.000_000_000, 1.952_600_620),
        (3, 2.709_269_961, 2.510_486_511),
    ];
    for (l, icpp, improved) in pins {
        let (g, offline) = arbitrary::offline_schedule(l);
        let p = arbitrary::params(l).p_total;
        for (algo, expect) in [(AlgoName::Icpp22, icpp), (AlgoName::Improved23, improved)] {
            let mut s = OnlineScheduler::for_algo_class(algo, ModelClass::Arbitrary);
            let sched = simulate(&g, &mut s, &SimOptions::new(p)).unwrap();
            let ratio = sched.makespan / offline.makespan;
            assert!(
                ((ratio - expect) / expect).abs() < 1e-6,
                "fig3 l={l} [{algo}]: measured ratio {ratio:.9} drifted from pinned {expect:.9}"
            );
        }
    }
}

#[test]
fn figure4_marks_are_pinned() {
    // Decision-point times and final makespan of the Fig. 4 adaptive
    // run (ℓ = 2) under equal-share.
    let mut adv = arbitrary::AdaptiveChains::new(2);
    let mut eq = EqualShareScheduler::new();
    let s = simulate_instance(&mut adv, &mut eq, &SimOptions::new(32)).unwrap();
    let t = adv.t_marks();
    assert!((t[1].unwrap() - 0.5).abs() < 1e-2);
    assert!((t[2].unwrap() - 0.8333).abs() < 1e-2);
    assert!((t[3].unwrap() - 1.0647).abs() < 1e-2);
    assert!((s.makespan - 1.2314).abs() < 1e-2);
}
