//! Regression pins for the simulation hot path.
//!
//! `end_to_end.rs` checks the *analysis* numbers against the paper;
//! this suite pins the *measured* numbers — the ones produced by the
//! scheduler + engine pipeline that the indexed ready queue, the
//! allocation cache, and the engine buffer reuse all sit on. Any
//! behavioural drift in that pipeline moves these constants.
//!
//! The pinned values are the `measured` column of
//! `results/lower_bounds.csv` and the Figure 4 marks; tolerances are
//! 1e-2 (the printed precision of Table 1) or tighter.

use moldable::adversary::{amdahl, arbitrary, communication, general, roofline};
use moldable::core::baselines::EqualShareScheduler;
use moldable::sim::{simulate_instance, SimOptions};

/// Run one lower-bound instance and compare the measured ratio to its
/// pinned value.
fn pin(inst: &moldable::adversary::LowerBoundInstance, expect: f64, ctx: &str) {
    let (_, ratio) = inst.run_online();
    assert!(
        (ratio - expect).abs() < 1e-2,
        "{ctx}: measured ratio {ratio} drifted from pinned {expect}"
    );
}

#[test]
fn measured_table1_column_is_pinned() {
    // The `measured LB` column of results/table1.csv, to the printed
    // 1e-2: roofline at P = 1e5, communication at P = 1001, Amdahl and
    // general at K = 80.
    pin(&roofline::instance(100_000), 2.6180, "roofline P=1e5");
    pin(&communication::instance(1001), 3.5083, "communication P=1001");
    pin(&amdahl::instance(80), 4.5567, "amdahl K=80");
    pin(&general::instance(80), 5.0765, "general K=80");
}

#[test]
fn lower_bound_sweep_tail_is_pinned() {
    // The largest sweep sizes of results/lower_bounds.csv — exactly
    // the rows the perf work must keep byte-identical.
    pin(&communication::instance(1601), 3.50958, "communication P=1601");
    pin(&amdahl::instance(120), 4.60754, "amdahl K=120");
    pin(&general::instance(120), 5.12686, "general K=120");
}

#[test]
fn figure4_marks_are_pinned() {
    // Decision-point times and final makespan of the Fig. 4 adaptive
    // run (ℓ = 2) under equal-share.
    let mut adv = arbitrary::AdaptiveChains::new(2);
    let mut eq = EqualShareScheduler::new();
    let s = simulate_instance(&mut adv, &mut eq, &SimOptions::new(32)).unwrap();
    let t = adv.t_marks();
    assert!((t[1].unwrap() - 0.5).abs() < 1e-2);
    assert!((t[2].unwrap() - 0.8333).abs() < 1e-2);
    assert!((t[3].unwrap() - 1.0647).abs() < 1e-2);
    assert!((s.makespan - 1.2314).abs() < 1e-2);
}
