//! Empirical verification of the analysis lemmas on *measured*
//! schedules — the cross-crate glue test: allocation envelopes
//! (`analysis`), schedule profiles (`sim`), and the algorithm (`core`)
//! must all agree with the proof machinery.
//!
//! For every run of the online algorithm with parameter μ and envelope
//! constants `(α, β)` of the task class:
//!
//! * Lemma 3: `μ·T₂ + (1−μ)·T₃ ≤ α · A_min / P`
//! * Lemma 4: `T₁/β + μ·T₂ ≤ C_min`
//! * Lemma 5: `T ≤ (μα + 1 − 2μ)/(μ(1−μ)) · max(A_min/P, C_min)`

use moldable::analysis;
use moldable::core::OnlineScheduler;
use moldable::graph::gen;
use moldable::model::rng::StdRng;
use moldable::model::sample::ParamDistribution;
use moldable::model::{delta, ModelClass};
use moldable::sim::{interval_profile, simulate, SimOptions};

/// The `(α, β)` pair Lemmas 6–9 guarantee for a class at its μ*.
fn envelope(class: ModelClass) -> (f64, f64) {
    let mu = class.optimal_mu();
    match class {
        ModelClass::Roofline => (1.0, 1.0),
        ModelClass::Communication => {
            let x = analysis::communication::x_star(mu).unwrap();
            (
                analysis::communication::alpha(x),
                analysis::communication::beta(x),
            )
        }
        ModelClass::Amdahl => {
            let x = analysis::amdahl::x_star(mu).unwrap();
            (analysis::amdahl::alpha(x), analysis::amdahl::beta(x))
        }
        ModelClass::General => {
            let x = analysis::general::x_star(mu).unwrap();
            (analysis::general::alpha(x), analysis::general::beta(x))
        }
        ModelClass::Arbitrary => unreachable!("no envelope for arbitrary"),
    }
}

#[test]
fn lemmas_3_4_5_hold_on_measured_schedules() {
    let p_total = 64;
    for class in ModelClass::bounded_classes() {
        let mu = class.optimal_mu();
        let (alpha, beta) = envelope(class);
        // beta must satisfy the Step 1 constraint.
        assert!(beta <= delta(mu) * (1.0 + 1e-9), "{class}");
        for seed in 0..4u64 {
            let mut rng = StdRng::seed_from_u64(seed * 53 + 1);
            let dist = ParamDistribution::default();
            let mut assign = gen::weighted_sampler(class, dist, p_total, &mut rng);
            let mut srng = StdRng::seed_from_u64(seed);
            let g = gen::layered_random(6, 10, 0.3, &mut srng, &mut assign);

            let mut sched = OnlineScheduler::for_class(class);
            let s = simulate(&g, &mut sched, &SimOptions::new(p_total)).unwrap();
            s.validate(&g).unwrap();
            let b = g.bounds(p_total);
            let prof = interval_profile(&s, mu);

            // The schedule never idles while work remains: list
            // scheduling is non-idling, so T1+T2+T3 covers everything.
            assert!(prof.idle < 1e-9, "{class} seed {seed}: idle {}", prof.idle);

            // Lemma 3.
            let lhs3 = mu * prof.t2 + (1.0 - mu) * prof.t3;
            let rhs3 = alpha * b.area_bound();
            assert!(
                lhs3 <= rhs3 * (1.0 + 1e-9),
                "{class} seed {seed}: Lemma 3 violated: {lhs3} > {rhs3}"
            );

            // Lemma 4.
            let lhs4 = prof.t1 / beta + mu * prof.t2;
            assert!(
                lhs4 <= b.c_min * (1.0 + 1e-9),
                "{class} seed {seed}: Lemma 4 violated: {lhs4} > {}",
                b.c_min
            );

            // Lemma 5 (the theorem itself).
            let ratio = analysis::lemma5_ratio(mu, alpha);
            assert!(
                s.makespan <= ratio * b.lower_bound() * (1.0 + 1e-9),
                "{class} seed {seed}: Lemma 5 violated"
            );
        }
    }
}

#[test]
fn profile_partitions_the_makespan() {
    let p_total = 32;
    let mut rng = StdRng::seed_from_u64(9);
    let dist = ParamDistribution::default();
    let mut assign = gen::weighted_sampler(ModelClass::General, dist, p_total, &mut rng);
    let g = gen::fft(4, &mut assign);
    let mut sched = OnlineScheduler::for_class(ModelClass::General);
    let s = simulate(&g, &mut sched, &SimOptions::new(p_total)).unwrap();
    let prof = interval_profile(&s, sched.mu());
    assert!((prof.total() - s.makespan).abs() < 1e-9 * s.makespan);
}

#[test]
fn allocator_respects_envelope_beta_for_every_sampled_task() {
    // The allocation Algorithm 2 picks never stretches time beyond
    // delta(mu) — the constraint the envelopes are built around.
    let p_total = 128;
    for class in ModelClass::bounded_classes() {
        let mu = class.optimal_mu();
        let d = delta(mu);
        let mut rng = StdRng::seed_from_u64(31);
        let dist = ParamDistribution::default();
        for _ in 0..200 {
            let m = dist.sample(class, p_total, &mut rng);
            let a = moldable::core::allocate(&m, p_total, mu);
            let stretch = m.time(a.initial) / m.t_min(p_total);
            assert!(
                stretch <= d * (1.0 + 1e-9),
                "{class}: beta = {stretch} > delta = {d} for {m:?}"
            );
        }
    }
}
