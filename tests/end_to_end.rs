//! End-to-end integration tests through the `moldable` facade:
//! the paper's headline numbers, regenerated from scratch.

use moldable::adversary::{amdahl, arbitrary, communication, general, roofline};
use moldable::analysis;
use moldable::core::baselines::EqualShareScheduler;
use moldable::core::OnlineScheduler;
use moldable::model::ModelClass;
use moldable::sim::{simulate, simulate_instance, SimOptions};

#[test]
fn table1_reproduces_within_printed_precision() {
    for row in analysis::table1() {
        assert!(
            (row.upper.ratio - row.paper.0).abs() < 0.01,
            "{} UB: {} vs paper {}",
            row.class,
            row.upper.ratio,
            row.paper.0
        );
        assert!(
            (row.lower - row.paper.1).abs() < 0.01,
            "{} LB: {} vs paper {}",
            row.class,
            row.lower,
            row.paper.1
        );
    }
}

#[test]
fn theorem5_roofline_ratio() {
    let r = roofline::measured_ratio(100_000);
    assert!((r - 2.618).abs() < 1e-3, "ratio = {r}");
}

#[test]
fn theorem6_communication_ratio_close_to_asymptote() {
    let (_, r) = communication::instance(801).run_online();
    let asym = communication::asymptotic_bound();
    assert!(r > 3.5 && r <= asym, "ratio = {r}, asymptote = {asym}");
}

#[test]
fn theorem7_and_8_ratios_grow_past_four_and_a_half() {
    let (_, r7) = amdahl::instance(100).run_online();
    assert!(r7 > 4.5, "Thm 7 at K=100: {r7}");
    let (_, r8) = general::instance(100).run_online();
    assert!(r8 > 5.0, "Thm 8 at K=100: {r8}");
    assert!(r8 <= general::upper_bound() + 1e-9);
}

#[test]
fn figure4_decision_points() {
    let mut adv = arbitrary::AdaptiveChains::new(2);
    let mut eq = EqualShareScheduler::new();
    let s = simulate_instance(&mut adv, &mut eq, &SimOptions::new(32)).unwrap();
    let t = adv.t_marks();
    assert!((t[1].unwrap() - 0.5).abs() < 1e-9);
    assert!((t[2].unwrap() - 5.0 / 6.0).abs() < 1e-9);
    assert!((t[3].unwrap() - 1.064_711).abs() < 1e-4);
    assert!((s.makespan - 1.231_378).abs() < 1e-4);
}

#[test]
fn figure4a_offline_optimum_is_one() {
    let (g, s) = arbitrary::offline_schedule(2);
    s.validate(&g).unwrap();
    assert!((s.makespan - 1.0).abs() < 1e-12);
}

#[test]
fn online_beats_its_guarantee_on_every_builtin_workload() {
    use moldable::graph::gen;
    use moldable::model::rng::StdRng;
    use moldable::model::sample::ParamDistribution;
    let p_total = 48;
    for class in ModelClass::bounded_classes() {
        let guarantee = class.proven_upper_bound().unwrap();
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let dist = ParamDistribution::default();
            let mut assign = gen::weighted_sampler(class, dist, p_total, &mut rng);
            let g = gen::lu(5, &mut assign);
            let mut sched = OnlineScheduler::for_class(class);
            let s = simulate(&g, &mut sched, &SimOptions::new(p_total)).unwrap();
            s.validate(&g).unwrap();
            let lb = g.bounds(p_total).lower_bound();
            assert!(
                s.makespan <= guarantee * lb,
                "{class} seed {seed}: {} > {guarantee} x {lb}",
                s.makespan
            );
        }
    }
}

#[test]
fn prelude_exposes_the_happy_path() {
    use moldable::prelude::*;
    let mut g = GraphBuilder::new();
    let a = g.add_task(SpeedupModel::amdahl(4.0, 1.0).unwrap());
    let b = g.add_task(SpeedupModel::roofline(8.0, 4).unwrap());
    g.add_edge(a, b).unwrap();
    let g: TaskGraph = g.freeze();
    assert_eq!(g.model_class(), Some(ModelClass::General));
    let mut s: OnlineScheduler =
        OnlineScheduler::for_class(ModelClass::General).with_policy(QueuePolicy::Fifo);
    let schedule: Schedule = simulate(&g, &mut s, &SimOptions::new(8)).unwrap();
    assert!(schedule.makespan > 0.0);
    let _: TaskId = a;
}
